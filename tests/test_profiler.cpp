/**
 * @file
 * Trace-analytics and attribution tests: the JSON reader, epoch
 * critical-path profiles from both input paths (live recorder and a
 * Chrome-export round trip), span-family aggregation, the anomaly
 * watchdog's rules, and — the load-bearing invariant — the fabric-time
 * ledger summing bit-exactly to EngineStats fabric_ns across every
 * backend, planner setting, and with scrub + virtualization active.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "core/sharded.hpp"
#include "obs/analyze.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "reliability/scrubber.hpp"
#include "service/ingest.hpp"
#include "virt/virtspace.hpp"

using namespace c2m;
using namespace c2m::obs;

namespace {

struct CapturedLog
{
    std::mutex m;
    std::vector<std::string> lines;
};

void
captureSink(void *ctx, LogLevel, const char *msg)
{
    auto *cap = static_cast<CapturedLog *>(ctx);
    std::lock_guard<std::mutex> lock(cap->m);
    cap->lines.emplace_back(msg);
}

core::EngineConfig
smallConfig(core::BackendKind backend, bool planner)
{
    core::EngineConfig cfg;
    cfg.numCounters = 256;
    cfg.capacityBits = 16;
    cfg.maxMaskRows = 1;
    cfg.backend = backend;
    cfg.drainPlanner = planner;
    cfg.seed = 0xabcdULL;
    return cfg;
}

std::vector<core::BatchOp>
randomOps(size_t n, size_t counters, uint64_t seed)
{
    Rng rng(seed);
    std::vector<core::BatchOp> ops;
    ops.reserve(n);
    for (size_t i = 0; i < n; ++i)
        ops.push_back({rng.nextBounded(counters),
                       static_cast<int64_t>(1 + rng.nextBounded(7)),
                       0});
    return ops;
}

} // namespace

// ---------------------------------------------------------------------
// JSON reader
// ---------------------------------------------------------------------

TEST(Json, ParsesNestedDocument)
{
    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse(
        R"({"a": 1.5, "b": [true, null, "x\ny"], "c": {"d": -3e2}})",
        v, &err))
        << err;
    EXPECT_DOUBLE_EQ(v.numberOr("a", 0.0), 1.5);
    const json::Value *b = v.find("b");
    ASSERT_TRUE(b && b->isArray());
    ASSERT_EQ(b->items.size(), 3u);
    EXPECT_TRUE(b->items[0].isBool() && b->items[0].boolean);
    EXPECT_TRUE(b->items[1].isNull());
    EXPECT_EQ(b->items[2].string, "x\ny");
    const json::Value *c = v.find("c");
    ASSERT_TRUE(c && c->isObject());
    EXPECT_DOUBLE_EQ(c->numberOr("d", 0.0), -300.0);
}

TEST(Json, PreservesMemberOrderAndFallbacks)
{
    json::Value v;
    ASSERT_TRUE(json::parse(R"({"z": 1, "a": 2})", v));
    ASSERT_EQ(v.members.size(), 2u);
    EXPECT_EQ(v.members[0].first, "z");
    EXPECT_EQ(v.members[1].first, "a");
    EXPECT_DOUBLE_EQ(v.numberOr("missing", 7.0), 7.0);
    EXPECT_EQ(v.stringOr("missing", "dflt"), "dflt");
    EXPECT_TRUE(v.boolOr("missing", true));
}

TEST(Json, RejectsMalformedInput)
{
    json::Value v;
    std::string err;
    EXPECT_FALSE(json::parse("{\"a\": }", v, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(json::parse("[1, 2] trailing", v, &err));
    EXPECT_FALSE(json::parse("{\"a\": truth}", v, &err));
    EXPECT_FALSE(json::parse("", v, &err));
}

TEST(Json, ParsesUnicodeEscapes)
{
    json::Value v;
    ASSERT_TRUE(json::parse("[\"A\\u00e9\"]", v));
    ASSERT_EQ(v.items.size(), 1u);
    EXPECT_EQ(v.items[0].string, "A\xC3\xA9");
}

// ---------------------------------------------------------------------
// Epoch profiles
// ---------------------------------------------------------------------

namespace {

/**
 * Hand-stamped scenario: one 100us epoch with an execute phase, two
 * shard drains (shard 1 is the 60us straggler; fabric deltas 500ns
 * and 20000ns), and one plan commit + one fallback instant.
 */
TraceRecorder &
recordScenario(TraceRecorder &rec)
{
    using K = EventKind;
    rec.record({"epoch", 1000, 0, 0, 0, kServiceTrack, K::SpanBegin});
    rec.record({"epoch.execute", 2000, 0, 0, 0, kServiceTrack,
                K::SpanBegin});
    rec.record({"shard.drain", 10000, 100.0, 0, 0, 0, K::SpanBegin});
    rec.record({"shard.drain", 10000, 50.0, 0, 0, 1, K::SpanBegin});
    rec.record({"plan.commit", 50000, 0, 111, 222, 1, K::Instant});
    rec.record({"shard.drain", 40000, 600.0, 0, 0, 0, K::SpanEnd});
    rec.record({"plan.fallback", 60000, 0, 10, 333, 1, K::Instant});
    rec.record({"shard.drain", 70000, 20050.0, 0, 0, 1, K::SpanEnd});
    rec.record({"epoch.execute", 90000, 0, 0, 0, kServiceTrack,
                K::SpanEnd});
    rec.record({"epoch", 101000, 0, 0, 0, kServiceTrack, K::SpanEnd});
    return rec;
}

void
checkScenarioProfile(const std::vector<EpochProfile> &eps)
{
    ASSERT_EQ(eps.size(), 1u);
    const EpochProfile &ep = eps[0];
    EXPECT_FALSE(ep.synthetic);
    EXPECT_EQ(ep.hostNs(), 100000);
    EXPECT_EQ(ep.executeNs, 88000);
    ASSERT_EQ(ep.shards.size(), 2u);
    EXPECT_EQ(ep.criticalShard, 1);
    // Straggler 60us over mean 45us.
    EXPECT_NEAR(ep.skew, 60000.0 / 45000.0, 1e-9);
    EXPECT_DOUBLE_EQ(ep.fabricCriticalNs, 20000.0);
    EXPECT_NEAR(ep.utilization, 0.2, 1e-9);
    EXPECT_EQ(ep.planCommits, 1u);
    EXPECT_EQ(ep.planFallbacks, 1u);
    EXPECT_DOUBLE_EQ(ep.planPricedNs, 111.0);    // commit: arg
    EXPECT_DOUBLE_EQ(ep.fallbackPricedNs, 333.0); // fallback: arg2
}

} // namespace

TEST(EpochProfile, CriticalPathFromLiveRecorder)
{
    TraceRecorder rec;
    const ProfileInput in = profileFromRecorder(recordScenario(rec));
    EXPECT_EQ(in.spans.size(), 4u);
    EXPECT_EQ(in.instants.size(), 2u);
    checkScenarioProfile(buildEpochProfiles(in));
}

TEST(EpochProfile, ChromeExportRoundTripsIdentically)
{
    TraceRecorder rec;
    recordScenario(rec);
    const std::string jsonText = exportChromeTrace(rec);
    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parse(jsonText, doc, &err)) << err;
    ProfileInput in;
    ASSERT_TRUE(profileFromChromeJson(doc, in));
    EXPECT_EQ(in.spans.size(), 4u);
    EXPECT_EQ(in.instants.size(), 2u);
    EXPECT_EQ(in.eventCount, 10u);
    EXPECT_EQ(in.droppedEvents, 0u);
    checkScenarioProfile(buildEpochProfiles(in));
    // And the report renderers accept the round-tripped input.
    EXPECT_NE(renderEpochProfiles(buildEpochProfiles(in)).find("1.333"),
              std::string::npos);
    EXPECT_NE(renderTrackLatency(in, "shard.drain").find("shard1"),
              std::string::npos);
}

TEST(EpochProfile, SyntheticWindowWhenNoEpochSpans)
{
    TraceRecorder rec;
    using K = EventKind;
    rec.record({"shard.drain", 1000, 10.0, 0, 0, 0, K::SpanBegin});
    rec.record({"shard.drain", 5000, 110.0, 0, 0, 0, K::SpanEnd});
    rec.record({"shard.drain", 1000, 10.0, 0, 0, 1, K::SpanBegin});
    rec.record({"shard.drain", 9000, 210.0, 0, 0, 1, K::SpanEnd});
    const auto eps = buildEpochProfiles(profileFromRecorder(rec));
    ASSERT_EQ(eps.size(), 1u);
    EXPECT_TRUE(eps[0].synthetic);
    EXPECT_EQ(eps[0].beginNs, 1000);
    EXPECT_EQ(eps[0].criticalShard, 1);
    EXPECT_DOUBLE_EQ(eps[0].fabricCriticalNs, 200.0);
}

TEST(EpochProfile, UnclosedBeginClosedAtLastStamp)
{
    TraceRecorder rec;
    using K = EventKind;
    rec.record({"shard.drain", 1000, 0, 0, 0, 0, K::SpanBegin});
    rec.record({"tick", 8000, 0, 0, 0, 0, K::Instant});
    const ProfileInput in = profileFromRecorder(rec);
    ASSERT_EQ(in.spans.size(), 1u);
    EXPECT_EQ(in.spans[0].endNs, 8000);
    EXPECT_LT(in.spans[0].fabricDeltaNs, 0.0); // unstamped
}

TEST(SpanFamilies, AggregatesAndRanksByTotalTime)
{
    TraceRecorder rec;
    using K = EventKind;
    rec.record({"short", 0, 0, 0, 0, 0, K::SpanBegin});
    rec.record({"short", 100, 0, 0, 0, 0, K::SpanEnd});
    rec.record({"long", 200, 10.0, 0, 0, 0, K::SpanBegin});
    rec.record({"long", 10200, 60.0, 0, 0, 0, K::SpanEnd});
    rec.record({"short", 300, 0, 0, 0, 1, K::SpanBegin});
    rec.record({"short", 700, 0, 0, 0, 1, K::SpanEnd});
    const auto fams =
        topSpanFamilies(profileFromRecorder(rec), 10);
    ASSERT_EQ(fams.size(), 2u);
    EXPECT_EQ(fams[0].name, "long");
    EXPECT_DOUBLE_EQ(fams[0].totalFabricNs, 50.0);
    EXPECT_EQ(fams[1].name, "short");
    EXPECT_EQ(fams[1].count, 2u);
    EXPECT_EQ(fams[1].totalHostNs, 500);
    EXPECT_EQ(fams[1].maxHostNs, 400);
    // topN truncation keeps the heaviest family.
    const auto one = topSpanFamilies(profileFromRecorder(rec), 1);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0].name, "long");
}

// ---------------------------------------------------------------------
// Fabric-time ledger: every modeled ns lands in exactly one category
// and the rows sum bit-exactly to the fabric_ns total.
// ---------------------------------------------------------------------

TEST(FabricLedger, BitExactAcrossBackendsAndPlannerSettings)
{
    const auto ops = randomOps(600, 256, 7);
    for (const core::BackendKind backend :
         {core::BackendKind::Ambit, core::BackendKind::NvmPinatubo,
          core::BackendKind::NvmMagic, core::BackendKind::Rca}) {
        for (const bool planner : {false, true}) {
            core::ShardedEngine eng(smallConfig(backend, planner), 2);
            eng.accumulateBatch(ops);
            const auto st = eng.stats();
            const FabricLedger led = FabricLedger::fromStats(st);
            SCOPED_TRACE(std::string(core::backendName(backend)) +
                         (planner ? "/planner" : "/per-op"));
            EXPECT_TRUE(led.exact());
            EXPECT_GT(led.totalNs, 0.0);
            if (planner) {
                EXPECT_GT(led.rows[static_cast<unsigned>(
                              cim::FabricCat::Plan)],
                          0.0);
            } else {
                EXPECT_DOUBLE_EQ(led.rows[static_cast<unsigned>(
                                     cim::FabricCat::Plan)],
                                 0.0);
                EXPECT_GT(led.rows[static_cast<unsigned>(
                              cim::FabricCat::Fallback)],
                          0.0);
            }
            const std::string rendered = led.render();
            EXPECT_NE(rendered.find("bit-exact"), std::string::npos);
        }
    }
}

TEST(FabricLedger, ScrubAndVirtChargesLandInTheirCategories)
{
    core::EngineConfig cfg =
        smallConfig(core::BackendKind::Ambit, true);
    cfg.numCounters = 64;
    core::ShardedEngine engine(cfg, 2);
    service::IngestService svc(engine);
    reliability::Scrubber scrub(engine);
    virt::VirtConfig vcfg;
    vcfg.groupSize = 16;
    vcfg.promoteThreshold = 2;
    vcfg.restoreOpThreshold = 8;
    virt::VirtualCounterSpace space(svc, vcfg);
    space.attachScrubber(&scrub);

    Rng rng(61);
    for (size_t i = 0; i < 20000; ++i)
        space.add(1 + rng.nextBounded(300), // distinct nonzero keys
                  static_cast<int64_t>(1 + rng.nextBounded(3)));
    space.flush();
    svc.stop();

    const auto st = engine.stats();
    const FabricLedger led = FabricLedger::fromStats(st);
    EXPECT_TRUE(led.exact());
    EXPECT_GT(space.stats().spills, 0u);
    EXPECT_GT(scrub.stats().sweeps, 0u);
    EXPECT_GT(
        led.rows[static_cast<unsigned>(cim::FabricCat::Scrub)], 0.0);
    EXPECT_GT(
        led.rows[static_cast<unsigned>(cim::FabricCat::VirtSpill)],
        0.0);
    // Restores and materializations follow from re-touched groups.
    EXPECT_GT(
        led.rows[static_cast<unsigned>(cim::FabricCat::VirtRestore)] +
            led.rows[static_cast<unsigned>(
                cim::FabricCat::VirtMaterialize)],
        0.0);
}

TEST(FabricLedger, MergedShardStatsStayExact)
{
    // The invariant must survive the += merge across shard stats,
    // which re-sums rows in canonical order rather than adding the
    // two fabricNs totals directly.
    const auto ops = randomOps(400, 256, 13);
    core::ShardedEngine eng(
        smallConfig(core::BackendKind::Ambit, true), 4);
    eng.accumulateBatch(ops);
    core::EngineStats merged;
    for (unsigned s = 0; s < eng.numShards(); ++s)
        merged += eng.shard(s).stats();
    EXPECT_TRUE(FabricLedger::fromStats(merged).exact());
    EXPECT_TRUE(FabricLedger::fromStats(eng.stats()).exact());
    EXPECT_DOUBLE_EQ(FabricLedger::fromStats(merged).totalNs,
                     FabricLedger::fromStats(eng.stats()).totalNs);
}

// ---------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------

TEST(Watchdog, HealthySnapshotFiresNothing)
{
    Watchdog wd;
    MetricsRegistry::Snapshot snap;
    snap.delta = {{"service.submitted", 10000},
                  {"service.stalls", 3},
                  {"service.dropped", 0},
                  {"engine.program_cache_hits", 900},
                  {"engine.program_cache_misses", 100},
                  {"engine.uncorrected_blocks", 0}};
    EXPECT_EQ(wd.evaluate(snap), 0u);
    const CounterMap c = wd.counters();
    EXPECT_EQ(c.at("evaluations"), 1u);
    EXPECT_EQ(c.at("alerts"), 0u);
}

TEST(Watchdog, EachRuleFiresAndCounts)
{
    CapturedLog cap;
    setLogSink(&captureSink, &cap);
    resetLogRateLimiter();
    Watchdog wd;
    MetricsRegistry::Snapshot snap;
    snap.delta = {{"service.submitted", 1000},
                  {"service.stalls", 600},
                  {"service.dropped", 100},
                  {"engine.program_cache_hits", 10},
                  {"engine.program_cache_misses", 990},
                  {"engine.uncorrected_blocks", 2}};
    EXPECT_EQ(wd.evaluate(snap), 4u);
    setLogSink(nullptr, nullptr);

    const CounterMap c = wd.counters();
    EXPECT_EQ(c.at("alerts"), 4u);
    EXPECT_EQ(c.at("alert.queue_stall"), 1u);
    EXPECT_EQ(c.at("alert.queue_drop"), 1u);
    EXPECT_EQ(c.at("alert.cache_collapse"), 1u);
    EXPECT_EQ(c.at("alert.uncorrected"), 1u);
    EXPECT_EQ(c.at("alert.trace_drops"), 0u);
    ASSERT_EQ(cap.lines.size(), 4u);
    for (const std::string &line : cap.lines)
        EXPECT_NE(line.find("watchdog:"), std::string::npos);
}

TEST(Watchdog, PrefixedSourceKeysMatchBySuffix)
{
    Watchdog wd;
    MetricsRegistry::Snapshot snap;
    snap.delta = {{"svc.service.submitted", 1000},
                  {"svc.service.dropped", 500}};
    CapturedLog cap;
    setLogSink(&captureSink, &cap);
    resetLogRateLimiter();
    EXPECT_EQ(wd.evaluate(snap), 1u);
    setLogSink(nullptr, nullptr);
    EXPECT_EQ(wd.counters().at("alert.queue_drop"), 1u);
}

TEST(Watchdog, CacheRuleNeedsMinimumLookups)
{
    Watchdog wd;
    MetricsRegistry::Snapshot snap;
    // 10 lookups at 0% hit rate: below cacheMinLookups, no alert.
    snap.delta = {{"engine.program_cache_hits", 0},
                  {"engine.program_cache_misses", 10}};
    EXPECT_EQ(wd.evaluate(snap), 0u);
}

TEST(Watchdog, TraceDropRuleWatchesInstalledRecorder)
{
    TraceConfig tcfg;
    tcfg.lanes = 1;
    tcfg.capacityPerLane = 8;
    TraceRecorder rec(tcfg);
    CapturedLog cap;
    setLogSink(&captureSink, &cap);
    resetLogRateLimiter();
    rec.install();
    Watchdog wd;
    MetricsRegistry::Snapshot snap;
    EXPECT_EQ(wd.evaluate(snap), 0u); // nothing dropped yet
    for (int i = 0; i < 40; ++i)
        rec.instant("tick", 0, static_cast<uint64_t>(i));
    EXPECT_GT(rec.droppedEvents(), 0u);
    EXPECT_EQ(wd.evaluate(snap), 1u);
    // The alert's own warning is traced into the full ring and
    // dropped, so the rule would re-fire; uninstall to quiesce.
    rec.uninstall();
    EXPECT_EQ(wd.evaluate(snap), 0u); // no tracer: rule is silent
    setLogSink(nullptr, nullptr);
    EXPECT_EQ(wd.counters().at("alert.trace_drops"), 1u);
}
