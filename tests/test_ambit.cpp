/**
 * @file
 * Ambit interpreter semantics: single/dual/triple activations, DCC
 * complement ports, destructive TRA write-back, constants and fault
 * injection accounting.
 */

#include <gtest/gtest.h>

#include "cim/ambit.hpp"

using namespace c2m;
using cim::AmbitOp;
using cim::AmbitProgram;
using cim::AmbitSubarray;
using cim::RowRef;
using cim::RowSet;

TEST(Ambit, RowCloneCopiesData)
{
    AmbitSubarray sub(4, 16);
    sub.rawRow(0) = BitVector::fromString("1010101010101010");
    sub.execute(AmbitOp::aap(RowRef::data(0), RowRef::data(1)));
    EXPECT_EQ(sub.peekRow(1), sub.peekRow(0));
    EXPECT_EQ(sub.stats().aap, 1u);
}

TEST(Ambit, ConstantsReadZeroAndOne)
{
    AmbitSubarray sub(2, 8);
    sub.execute(AmbitOp::aap(RowRef::c1(), RowRef::data(0)));
    sub.execute(AmbitOp::aap(RowRef::c0(), RowRef::data(1)));
    EXPECT_EQ(sub.peekRow(0).popcount(), 8u);
    EXPECT_EQ(sub.peekRow(1).popcount(), 0u);
}

TEST(Ambit, DccNegativePortWriteStoresComplement)
{
    AmbitSubarray sub(2, 8);
    sub.rawRow(0) = BitVector::fromString("11110000");
    // Write through the negative port: the cell holds the complement.
    sub.execute(AmbitOp::aap(RowRef::data(0), RowRef::dccNeg(0)));
    EXPECT_EQ(sub.peekDcc(0).toString(), "00001111");
    // Reading the positive port returns the stored complement.
    sub.execute(AmbitOp::aap(RowRef::dcc(0), RowRef::data(1)));
    EXPECT_EQ(sub.peekRow(1).toString(), "00001111");
}

TEST(Ambit, DccNegativePortReadComplements)
{
    AmbitSubarray sub(2, 8);
    sub.rawRow(0) = BitVector::fromString("11001100");
    sub.execute(AmbitOp::aap(RowRef::data(0), RowRef::dcc(0)));
    sub.execute(AmbitOp::aap(RowRef::dccNeg(0), RowRef::data(1)));
    EXPECT_EQ(sub.peekRow(1).toString(), "00110011");
}

TEST(Ambit, B8WritesValueAndComplement)
{
    AmbitSubarray sub(1, 8);
    sub.rawRow(0) = BitVector::fromString("10011001");
    sub.execute(AmbitOp::aap(RowRef::data(0), RowSet::b8()));
    EXPECT_EQ(sub.peekT(0).toString(), "10011001");
    EXPECT_EQ(sub.peekDcc(0).toString(), "01100110");
}

TEST(Ambit, TripleActivationComputesMaj3)
{
    AmbitSubarray sub(1, 8);
    sub.pokeT(0, BitVector::fromString("00001111"));
    sub.pokeT(1, BitVector::fromString("00110011"));
    sub.pokeT(2, BitVector::fromString("01010101"));
    sub.execute(AmbitOp::ap(RowSet::b12()));
    EXPECT_EQ(sub.peekT(0).toString(), "00010111");
    EXPECT_EQ(sub.stats().tra, 1u);
}

TEST(Ambit, TripleActivationIsDestructive)
{
    AmbitSubarray sub(1, 8);
    sub.pokeT(0, BitVector::fromString("11111111"));
    sub.pokeT(1, BitVector::fromString("00000000"));
    sub.pokeT(2, BitVector::fromString("10101010"));
    sub.execute(AmbitOp::ap(RowSet::b12()));
    // All three activated rows hold the majority result.
    EXPECT_EQ(sub.peekT(0).toString(), "10101010");
    EXPECT_EQ(sub.peekT(1).toString(), "10101010");
    EXPECT_EQ(sub.peekT(2).toString(), "10101010");
}

TEST(Ambit, TraWritebackThroughNegatedPortComplements)
{
    AmbitSubarray sub(1, 8);
    sub.pokeT(2, BitVector::fromString("11110000"));
    sub.pokeDcc(0, BitVector::fromString("11001100")); // read as-is
    sub.pokeDcc(1, BitVector::fromString("11111111")); // neg port: 0
    // MAJ(T2, DCC0, ~DCC1) = MAJ(a, b, 0) = a AND b.
    sub.execute(AmbitOp::aap(RowSet::b14(), RowRef::t(3)));
    EXPECT_EQ(sub.peekT(3).toString(), "11000000");
    // Destructive: DCC1's cell now holds the complement of the result.
    EXPECT_EQ(sub.peekDcc(1).toString(), "00111111");
    EXPECT_EQ(sub.peekDcc(0).toString(), "11000000");
}

TEST(Ambit, AapFromTripleWritesResultToDestination)
{
    AmbitSubarray sub(2, 4);
    sub.pokeT(0, BitVector::fromString("1100"));
    sub.pokeT(1, BitVector::fromString("1010"));
    sub.pokeT(2, BitVector::fromString("0000"));
    sub.execute(AmbitOp::aap(RowSet::b12(), RowRef::data(1)));
    EXPECT_EQ(sub.peekRow(1).toString(), "1000"); // AND
}

TEST(Ambit, HostAccessCountsReadsWrites)
{
    AmbitSubarray sub(2, 8);
    sub.hostWriteRow(0, BitVector(8));
    (void)sub.hostReadRow(0);
    (void)sub.hostReadRow(1);
    EXPECT_EQ(sub.stats().rowWrites, 1u);
    EXPECT_EQ(sub.stats().rowReads, 2u);
}

TEST(Ambit, FaultInjectionOnlyOnTra)
{
    cim::FaultModel fm;
    fm.pMaj = 1.0; // every disagreeing TRA bit flips
    AmbitSubarray sub(2, 64, fm, 7);

    // Copies are unaffected.
    sub.rawRow(0) = BitVector(64);
    sub.rawRow(0).fill(true);
    sub.execute(AmbitOp::aap(RowRef::data(0), RowRef::data(1)));
    EXPECT_EQ(sub.peekRow(1).popcount(), 64u);
    EXPECT_EQ(sub.stats().faultsInjected, 0u);

    // A disagreeing TRA (two ones, one zero) flips every bit under
    // p = 1; MAJ would give all ones, the faults give all zeros.
    sub.pokeT(0, sub.peekRow(0));
    sub.pokeT(1, sub.peekRow(0));
    sub.pokeT(2, BitVector(64));
    sub.execute(AmbitOp::ap(RowSet::b12()));
    EXPECT_EQ(sub.peekT(0).popcount(), 0u);
    EXPECT_EQ(sub.stats().faultsInjected, 64u);
}

TEST(Ambit, UnanimousTraDoesNotFault)
{
    // Charge-sharing faults need disagreeing cells (Sec. 2.3): a
    // triple of identical rows senses with full margin.
    cim::FaultModel fm;
    fm.pMaj = 1.0;
    AmbitSubarray sub(1, 64, fm, 7);
    BitVector ones(64);
    ones.fill(true);
    sub.pokeT(0, ones);
    sub.pokeT(1, ones);
    sub.pokeT(2, ones);
    sub.execute(AmbitOp::ap(RowSet::b12()));
    EXPECT_EQ(sub.peekT(0).popcount(), 64u);
    EXPECT_EQ(sub.stats().faultsInjected, 0u);
}

TEST(Ambit, FaultRateApproximatelyCalibrated)
{
    cim::FaultModel fm;
    fm.pMaj = 0.02;
    AmbitSubarray sub(1, 4096, fm, 11);
    BitVector ones(4096);
    ones.fill(true);
    const int trials = 40;
    for (int t = 0; t < trials; ++t) {
        sub.pokeT(0, ones);
        sub.pokeT(1, ones);
        sub.pokeT(2, BitVector(4096)); // disagreeing triple
        sub.execute(AmbitOp::ap(RowSet::b12()));
    }
    const double rate = static_cast<double>(
                            sub.stats().faultsInjected) /
                        (4096.0 * trials);
    EXPECT_NEAR(rate, 0.02, 0.004);
}

TEST(Ambit, ProgramRunExecutesAllOps)
{
    AmbitSubarray sub(3, 8);
    AmbitProgram p;
    p.aap(RowRef::c1(), RowRef::data(0));
    p.aap(RowRef::data(0), RowRef::data(1));
    p.aap(RowRef::data(1), RowRef::data(2));
    sub.run(p);
    EXPECT_EQ(sub.peekRow(2).popcount(), 8u);
    EXPECT_EQ(sub.stats().aap, 3u);
    EXPECT_EQ(p.traCount(), 0u);
}

TEST(Ambit, OpToStringIsReadable)
{
    const auto op = AmbitOp::aap(RowSet::b12(), RowRef::data(5));
    EXPECT_EQ(op.toString(), "AAP {T0,T1,T2} -> {D5}");
    EXPECT_EQ(AmbitOp::ap(RowSet::b14()).toString(),
              "AP  {T2,DCC0,~DCC1}");
}
