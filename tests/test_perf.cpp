/**
 * @file
 * Performance-model tests: cost-model vs functional-engine command
 * counts, Fig. 8 orderings (k-ary < unit, IARM capacity-invariance,
 * RCA flat), bank scaling (Fig. 15), sparsity behaviour (Fig. 16),
 * C2M-vs-SIMDRAM ordering (Fig. 14/18), and the GPU roofline.
 */

#include <gtest/gtest.h>

#include "core/costmodel.hpp"
#include "core/engine.hpp"
#include "core/gpu_model.hpp"
#include "core/perf.hpp"
#include "workloads/llama.hpp"

using namespace c2m;
using namespace c2m::core;

TEST(CostModel, MatchesFunctionalEngineCommandCounts)
{
    // The analytic model must count exactly the commands the
    // functional engine executes for the same input stream.
    const unsigned radix = 10;
    EngineConfig cfg;
    cfg.radix = radix;
    cfg.capacityBits = 20;
    cfg.numCounters = 8;
    cfg.maxMaskRows = 2;
    C2MEngine eng(cfg);
    const unsigned h = eng.addMask(std::vector<uint8_t>(8, 1));
    // Skip the construction-time counter clearing in the baseline.
    const auto before = eng.subarray().stats().commands();

    const std::vector<uint64_t> values = {1, 9, 10, 99, 100, 255, 7,
                                          0, 64};
    for (uint64_t v : values)
        eng.accumulate(v, h);

    C2mCostModel model(radix, 20);
    const auto cost = model.accumulateStream(values);
    EXPECT_EQ(cost.aaps,
              eng.subarray().stats().commands() - before);
    EXPECT_EQ(cost.increments, eng.stats().increments);
    EXPECT_EQ(cost.ripples, eng.stats().ripples);
}

TEST(CostModel, Fig8aKaryBeatsUnitCounting)
{
    for (unsigned radix : {4u, 6u, 8u, 10u, 16u, 20u}) {
        C2mCostModel kary(radix, 64);
        C2mCostModel unit(radix, 64, false, 1, CountMode::Unit,
                          RippleMode::Iarm);
        EXPECT_LT(kary.avgOpsPerInput(8), unit.avgOpsPerInput(8))
            << "radix=" << radix;
    }
}

TEST(CostModel, Fig8bIarmBeatsFullRippling)
{
    for (unsigned radix : {4u, 8u, 10u, 16u}) {
        C2mCostModel iarm(radix, 64);
        C2mCostModel full(radix, 64, false, 1, CountMode::Kary,
                          RippleMode::FullRipple);
        EXPECT_LT(iarm.avgOpsPerInput(8), full.avgOpsPerInput(8))
            << "radix=" << radix;
    }
}

TEST(CostModel, Fig8bIarmIsCapacityInvariant)
{
    // The single IARM curve of Fig. 8b: the i16/i32/i64 costs differ
    // only marginally (ripples touched are input-driven).
    C2mCostModel i16(4, 16);
    C2mCostModel i64(4, 64);
    const double a = i16.avgOpsPerInput(8);
    const double b = i64.avgOpsPerInput(8);
    EXPECT_NEAR(a / b, 1.0, 0.05);
}

TEST(CostModel, Fig8bFullRipplingIsCapacityDependent)
{
    C2mCostModel i16(4, 16, false, 1, CountMode::Kary,
                     RippleMode::FullRipple);
    C2mCostModel i64(4, 64, false, 1, CountMode::Kary,
                     RippleMode::FullRipple);
    EXPECT_GT(i64.avgOpsPerInput(8), 1.5 * i16.avgOpsPerInput(8));
}

TEST(CostModel, Fig8aRcaFlatAcrossRadixAndProportionalToWidth)
{
    const RcaCostModel w16(16), w32(32), w64(64);
    EXPECT_NEAR(static_cast<double>(w32.accumulateOps()) /
                    w16.accumulateOps(),
                2.0, 0.1);
    EXPECT_NEAR(static_cast<double>(w64.accumulateOps()) /
                    w32.accumulateOps(),
                2.0, 0.1);
}

TEST(CostModel, C2mBeatsRcaAtModerateRadices)
{
    // Fig. 8b: IARM counting needs far fewer ops than a 64-bit RCA
    // for radices 4-8.
    const RcaCostModel rca(64);
    for (unsigned radix : {4u, 6u, 8u, 10u}) {
        C2mCostModel cm(radix, 64);
        EXPECT_LT(cm.avgOpsPerInput(8),
                  static_cast<double>(rca.accumulateOps()))
            << "radix=" << radix;
    }
}

TEST(CostModel, ProtectionInflatesOps)
{
    C2mCostModel plain(10, 32);
    C2mCostModel prot(10, 32, true, 1);
    C2mCostModel prot3(10, 32, true, 3);
    EXPECT_GT(prot.incrementOps(1), plain.incrementOps(1));
    EXPECT_GT(prot3.incrementOps(1), prot.incrementOps(1));
}

TEST(PerfModel, EvaluateComputesConsistentMetrics)
{
    DramPerfModel model;
    const auto r = model.evaluate(1'000'000, 100, 16, 2e9);
    EXPECT_GT(r.timeMs, 0.0);
    EXPECT_GT(r.energyMj, 0.0);
    EXPECT_GT(r.gops, 0.0);
    EXPECT_NEAR(r.gopsPerWatt, r.gops / r.avgPowerW, 1e-9);
    EXPECT_NEAR(r.gopsPerMm2,
                r.gops / model.energy().rankAreaMm2(), 1e-9);
}

TEST(PerfModel, Fig15MoreBanksReduceLatency)
{
    DramPerfModel model;
    TensorWorkload w;
    w.M = 1;
    w.N = 22016;
    w.K = 8192;

    double prev = 1e30;
    for (unsigned banks : {1u, 4u, 16u}) {
        C2mDesign d;
        d.banks = banks;
        const auto r = c2mWorkloadPerf(w, d, model);
        EXPECT_LT(r.timeMs, prev) << "banks=" << banks;
        prev = r.timeMs;
    }
}

TEST(PerfModel, Fig15C2mFasterThanSimdram)
{
    DramPerfModel model;
    for (const auto &shape : workloads::llamaGemvShapes()) {
        TensorWorkload w;
        w.M = shape.M;
        w.N = shape.N;
        w.K = shape.K;
        C2mDesign cd;
        SimdramDesign sd;
        const auto c = c2mWorkloadPerf(w, cd, model);
        const auto s = simdramWorkloadPerf(w, sd, model);
        EXPECT_LT(c.timeMs, s.timeMs) << shape.id;
        EXPECT_GT(c.gopsPerWatt, s.gopsPerWatt) << shape.id;
    }
}

TEST(PerfModel, Fig16SparsityHelpsC2mNotSimdram)
{
    DramPerfModel model;
    TensorWorkload w;
    w.M = 1;
    w.N = 22016;
    w.K = 8192;

    C2mDesign cd;
    SimdramDesign sd;
    w.sparsity = 0.0;
    const auto c_dense = c2mWorkloadPerf(w, cd, model);
    const auto s_dense = simdramWorkloadPerf(w, sd, model);
    w.sparsity = 0.9;
    const auto c_sparse = c2mWorkloadPerf(w, cd, model);
    const auto s_sparse = simdramWorkloadPerf(w, sd, model);

    EXPECT_LT(c_sparse.timeMs, 0.5 * c_dense.timeMs);
    EXPECT_NEAR(s_sparse.timeMs / s_dense.timeMs, 1.0, 0.01);
}

TEST(PerfModel, ProtectionOverheadIsModest)
{
    // Fig. 18: protection costs roughly 2x ops plus ~20% correction,
    // far below TMR's 4x.
    DramPerfModel model;
    TensorWorkload w;
    w.M = 16;
    w.N = 4096;
    w.K = 1024;
    C2mDesign plain;
    C2mDesign prot = plain;
    prot.protect = true;
    const auto a = c2mWorkloadPerf(w, plain, model);
    const auto b = c2mWorkloadPerf(w, prot, model);
    EXPECT_GT(b.timeMs, a.timeMs);
    EXPECT_LT(b.timeMs, 6.0 * a.timeMs);
}

TEST(GpuModel, GemvIsBandwidthBound)
{
    const auto gpu = GpuModel::rtx3090ti();
    const auto r = gpu.run(1, 22016, 8192);
    // Weight streaming dominates: ~180 MB at ~1 TB/s is ~0.18 ms.
    EXPECT_NEAR(r.kernelMs, 0.18, 0.05);
    EXPECT_GT(r.transferMs, 5.0); // PCIe transfer dwarfs the kernel
}

TEST(GpuModel, GemmIsComputeBound)
{
    const auto gpu = GpuModel::rtx3090ti();
    const auto r = gpu.run(8192, 8192, 8192);
    EXPECT_GT(r.gops, 100000.0); // > 100 TOPS achieved
    EXPECT_LT(r.gops, 400000.0);
}

TEST(GpuModel, C2mCrossesGpuGemvAtModerateSparsity)
{
    // Fig. 16 (left): with host-device transfer included, C2M is
    // comparable to the GPU on dense GEMV and overtakes it beyond
    // roughly 40% input sparsity.
    DramPerfModel model;
    TensorWorkload w;
    w.M = 1;
    w.N = 22016;
    w.K = 8192;
    C2mDesign d;
    const auto g = GpuModel::rtx3090ti().run(1, 22016, 8192);

    const auto dense = c2mWorkloadPerf(w, d, model);
    EXPECT_LT(dense.timeMs, 3.0 * g.totalMs); // comparable

    w.sparsity = 0.5;
    const auto sparse = c2mWorkloadPerf(w, d, model);
    EXPECT_LT(sparse.timeMs, g.totalMs); // crossover
}

TEST(GpuModel, GpuWinsDenseGemm)
{
    // Fig. 16 (right): the GPU dominates dense GEMM; C2M needs
    // extreme sparsity to cross over.
    DramPerfModel model;
    TensorWorkload w;
    w.M = 8192;
    w.N = 22016;
    w.K = 8192;
    C2mDesign d;
    const auto c = c2mWorkloadPerf(w, d, model);
    const auto g = GpuModel::rtx3090ti().run(w.M, w.N, w.K);
    EXPECT_GT(c.timeMs, g.totalMs);

    w.sparsity = 0.999;
    const auto c_sparse = c2mWorkloadPerf(w, d, model);
    EXPECT_LT(c_sparse.timeMs, 0.05 * c.timeMs);
}

TEST(PerfModel, Fig14EnergyEfficiencyOrdering)
{
    // C2M delivers higher GOPS/W than SIMDRAM on every Tab.-3 shape.
    DramPerfModel model;
    for (const auto &shape : workloads::llamaAllShapes()) {
        TensorWorkload w;
        w.M = shape.M;
        w.N = shape.N;
        w.K = shape.K;
        C2mDesign cd;
        SimdramDesign sd;
        const auto c = c2mWorkloadPerf(w, cd, model);
        const auto s = simdramWorkloadPerf(w, sd, model);
        EXPECT_GT(c.gopsPerWatt / s.gopsPerWatt, 2.0) << shape.id;
        EXPECT_GT(c.gopsPerMm2 / s.gopsPerMm2, 2.0) << shape.id;
    }
}
