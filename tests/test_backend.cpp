/**
 * @file
 * CountingBackend tests: the same engine drives Ambit, NVM
 * (Pinatubo/MAGIC) and RCA substrates with identical counter
 * readouts on unprotected configs, capability flags gate protection
 * and tensor support, and the per-backend program cache replays
 * bit-identical programs with hit/miss counts surfaced in
 * EngineStats.
 */

#include <gtest/gtest.h>

#include <iterator>

#include "core/engine.hpp"
#include "core/kernels.hpp"
#include "core/sharded.hpp"
#include "workloads/dna.hpp"
#include "workloads/sparsity.hpp"

using namespace c2m;
using core::BackendKind;
using core::C2MEngine;
using core::EngineConfig;
using core::ShardedEngine;

namespace {

constexpr BackendKind kAllBackends[] = {
    BackendKind::Ambit, BackendKind::NvmPinatubo,
    BackendKind::NvmMagic, BackendKind::Rca};

EngineConfig
baseConfig(BackendKind kind, unsigned radix = 4)
{
    EngineConfig cfg;
    cfg.backend = kind;
    cfg.radix = radix;
    cfg.capacityBits = 16;
    cfg.numCounters = 8;
    cfg.maxMaskRows = 4;
    return cfg;
}

/** An op stream exercising k-ary steps, multi-digit carries, zeros. */
const uint64_t kValues[] = {1, 3, 0, 7, 2, 15, 64, 5, 1023, 2, 77};

std::vector<uint8_t>
altMask(size_t n, unsigned phase)
{
    std::vector<uint8_t> m(n, 0);
    for (size_t i = 0; i < n; ++i)
        m[i] = (i % 3) == phase;
    return m;
}

} // namespace

class BackendKindTest
    : public ::testing::TestWithParam<BackendKind>
{
};

TEST_P(BackendKindTest, UnsignedAccumulateMatchesHostReference)
{
    auto cfg = baseConfig(GetParam());
    C2MEngine eng(cfg);
    const auto m0 = altMask(cfg.numCounters, 0);
    const auto m1 = altMask(cfg.numCounters, 1);
    const unsigned h0 = eng.addMask(m0);
    const unsigned h1 = eng.addMask(m1);

    std::vector<int64_t> expect(cfg.numCounters, 0);
    for (size_t i = 0; i < std::size(kValues); ++i) {
        const unsigned h = i % 2 ? h1 : h0;
        const auto &m = i % 2 ? m1 : m0;
        eng.accumulate(kValues[i], h);
        for (size_t c = 0; c < expect.size(); ++c)
            if (m[c])
                expect[c] += static_cast<int64_t>(kValues[i]);
    }
    EXPECT_EQ(eng.readCounters(), expect)
        << "backend " << core::backendName(GetParam());
}

TEST_P(BackendKindTest, SignedAccumulateMatchesHostReference)
{
    auto cfg = baseConfig(GetParam());
    C2MEngine eng(cfg);
    const auto m0 = altMask(cfg.numCounters, 0);
    const unsigned h0 = eng.addMask(m0);

    const int64_t stream[] = {5, -3, 40, -60, 7, -1, -200, 33};
    std::vector<int64_t> expect(cfg.numCounters, 0);
    for (int64_t v : stream) {
        eng.accumulateSigned(v, h0);
        for (size_t c = 0; c < expect.size(); ++c)
            if (m0[c])
                expect[c] += v;
    }
    EXPECT_EQ(eng.readCounters(), expect)
        << "backend " << core::backendName(GetParam());
}

TEST_P(BackendKindTest, ReadDigitMatchesDecompositionAfterDrain)
{
    auto cfg = baseConfig(GetParam());
    C2MEngine eng(cfg);
    std::vector<uint8_t> all(cfg.numCounters, 1);
    const unsigned h = eng.addMask(all);

    uint64_t total = 0;
    for (uint64_t v : {9u, 27u, 100u}) {
        eng.accumulate(v, h);
        total += v;
    }
    eng.drain(0);

    auto &backend = eng.backend();
    uint64_t rest = total;
    for (unsigned d = 0; d < backend.numDigits(); ++d) {
        const auto digits = backend.readDigit(0, d);
        for (size_t c = 0; c < cfg.numCounters; ++c)
            EXPECT_EQ(digits[c], rest % cfg.radix)
                << "digit " << d << " col " << c << " backend "
                << core::backendName(GetParam());
        rest /= cfg.radix;
    }
}

TEST_P(BackendKindTest, GemvBinaryKernelRunsOnEveryBackend)
{
    auto cfg = baseConfig(GetParam());
    cfg.maxMaskRows = 8;
    C2MEngine eng(cfg);
    const auto Z = workloads::randomBinaryMatrix(
        6, cfg.numCounters, 0.5, 42);
    const std::vector<uint64_t> x = {3, 0, 9, 1, 14, 6};
    EXPECT_EQ(core::gemvIntBinary(eng, x, Z),
              core::refGemvBinary(x, Z));
}

TEST_P(BackendKindTest, CachedProgramsAreBitIdenticalToUncached)
{
    auto cached_cfg = baseConfig(GetParam());
    cached_cfg.programCache = true;
    auto uncached_cfg = baseConfig(GetParam());
    uncached_cfg.programCache = false;

    C2MEngine cached(cached_cfg);
    C2MEngine uncached(uncached_cfg);
    const auto m0 = altMask(cached_cfg.numCounters, 0);
    const unsigned hc = cached.addMask(m0);
    const unsigned hu = uncached.addMask(m0);

    for (int round = 0; round < 3; ++round)
        for (uint64_t v : kValues) {
            cached.accumulate(v, hc);
            uncached.accumulate(v, hu);
        }

    EXPECT_EQ(cached.readCounters(), uncached.readCounters());
    EXPECT_GT(cached.stats().programCacheHits, 0u);
    EXPECT_GT(cached.stats().programCacheMisses, 0u);
    EXPECT_LT(cached.stats().programCacheMisses,
              cached.stats().programCacheHits +
                  cached.stats().programCacheMisses);
    EXPECT_EQ(uncached.stats().programCacheHits, 0u);
    EXPECT_EQ(uncached.stats().programCacheMisses, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendKindTest, ::testing::ValuesIn(kAllBackends),
    [](const ::testing::TestParamInfo<BackendKind> &info) {
        std::string name = core::backendName(info.param);
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(BackendEquivalence, AllBackendsAgreeBitForBit)
{
    std::vector<std::vector<int64_t>> reads;
    for (BackendKind kind : kAllBackends) {
        auto cfg = baseConfig(kind);
        C2MEngine eng(cfg);
        const unsigned h0 = eng.addMask(altMask(cfg.numCounters, 0));
        const unsigned h1 = eng.addMask(altMask(cfg.numCounters, 1));
        for (size_t i = 0; i < std::size(kValues); ++i)
            eng.accumulate(kValues[i], i % 2 ? h1 : h0);
        eng.accumulateSigned(-123, h0);
        eng.accumulateSigned(-6, h1);
        reads.push_back(eng.readCounters());
    }
    for (size_t b = 1; b < reads.size(); ++b)
        EXPECT_EQ(reads[0], reads[b])
            << "backend " << core::backendName(kAllBackends[b])
            << " diverges from ambit";
}

TEST(BackendReadDigit, NegativeCountersAgreeAtNonPowerOfTwoRadix)
{
    // radix 6: 2^W is not divisible by 6^D, so the RCA backend must
    // reduce into the JC ring before slicing digits of a negative
    // counter (a plain mod-2^W digit read would diverge here).
    std::vector<std::vector<unsigned>> per_backend;
    for (BackendKind kind : kAllBackends) {
        auto cfg = baseConfig(kind, /*radix=*/6);
        C2MEngine eng(cfg);
        std::vector<uint8_t> all(cfg.numCounters, 1);
        const unsigned h = eng.addMask(all);
        eng.accumulateSigned(5, h);
        eng.accumulateSigned(-12, h);
        std::vector<unsigned> digits;
        for (unsigned d = 0; d < eng.backend().numDigits(); ++d)
            for (unsigned v : eng.backend().readDigit(0, d))
                digits.push_back(v);
        per_backend.push_back(std::move(digits));
    }
    for (size_t b = 1; b < per_backend.size(); ++b)
        EXPECT_EQ(per_backend[0], per_backend[b])
            << "backend " << core::backendName(kAllBackends[b])
            << " digit readout diverges from ambit";
}

TEST(BackendCaps, AdvertiseExpectedFeatures)
{
    for (BackendKind kind : kAllBackends) {
        C2MEngine eng(baseConfig(kind));
        const auto &caps = eng.backend().caps();
        switch (kind) {
        case BackendKind::Ambit:
            EXPECT_TRUE(caps.eccChecks && caps.tmrVoting &&
                        caps.signedCounting && caps.tensorOps &&
                        caps.pendingFlags);
            break;
        case BackendKind::NvmPinatubo:
        case BackendKind::NvmMagic:
            EXPECT_FALSE(caps.eccChecks);
            EXPECT_FALSE(caps.tmrVoting);
            EXPECT_TRUE(caps.signedCounting);
            EXPECT_FALSE(caps.tensorOps);
            EXPECT_TRUE(caps.pendingFlags);
            break;
        case BackendKind::Rca:
            EXPECT_TRUE(caps.eccChecks);
            EXPECT_FALSE(caps.tmrVoting);
            EXPECT_TRUE(caps.signedCounting);
            EXPECT_FALSE(caps.tensorOps);
            EXPECT_FALSE(caps.pendingFlags);
            break;
        }
    }
}

TEST(BackendProtection, EccRunsOnAmbitAndRca)
{
    for (BackendKind kind :
         {BackendKind::Ambit, BackendKind::Rca}) {
        auto cfg = baseConfig(kind);
        cfg.protection = core::Protection::Ecc;
        C2MEngine eng(cfg);
        std::vector<uint8_t> all(cfg.numCounters, 1);
        const unsigned h = eng.addMask(all);
        eng.accumulate(21, h);
        eng.accumulate(9, h);
        EXPECT_EQ(eng.readCounters(),
                  std::vector<int64_t>(cfg.numCounters, 30));
        EXPECT_GT(eng.stats().checksRun, 0u);
    }
}

TEST(BackendProtection, FaultedEccRetriesAreCacheInvariant)
{
    // With faults injected, the cached and uncached engines must
    // still follow identical execution paths (same programs, same
    // RNG draws), so the readouts stay bit-identical.
    for (bool cache : {false, true}) {
        auto cfg = baseConfig(BackendKind::Ambit);
        cfg.protection = core::Protection::Ecc;
        cfg.faultRate = 2e-3;
        cfg.seed = 77;
        cfg.programCache = cache;
        C2MEngine eng(cfg);
        std::vector<uint8_t> all(cfg.numCounters, 1);
        const unsigned h = eng.addMask(all);
        for (uint64_t v : kValues)
            eng.accumulate(v, h);
        static std::vector<int64_t> first;
        if (!cache)
            first = eng.readCounters();
        else
            EXPECT_EQ(eng.readCounters(), first);
    }
}

TEST(BackendSharded, NonAmbitShardsMatchHostHistogram)
{
    for (BackendKind kind : kAllBackends) {
        auto cfg = baseConfig(kind);
        cfg.numCounters = 32;
        cfg.maxMaskRows = 1;
        ShardedEngine eng(cfg, 4);
        std::vector<core::BatchOp> ops;
        std::vector<int64_t> expect(cfg.numCounters, 0);
        for (uint64_t i = 0; i < 64; ++i) {
            const uint64_t counter = (i * 7) % cfg.numCounters;
            const int64_t value = 1 + static_cast<int64_t>(i % 5);
            ops.push_back({counter, value, 0});
            expect[counter] += value;
        }
        eng.accumulateBatch(ops);
        EXPECT_EQ(eng.readAllCounters(), expect)
            << "backend " << core::backendName(kind);
    }
}

TEST(BackendSharded, ShiftLeftFansOutToAllShards)
{
    auto cfg = baseConfig(BackendKind::Ambit);
    cfg.numCounters = 16;
    cfg.numGroups = 2;
    cfg.maxMaskRows = 2;
    ShardedEngine eng(cfg, 4);
    std::vector<uint8_t> all(cfg.numCounters, 1);
    const unsigned h = eng.addMask(all);
    eng.accumulate(5, h, 0);

    eng.shiftLeft(0, 1, 2); // x4
    EXPECT_EQ(eng.readAllCounters(0),
              std::vector<int64_t>(cfg.numCounters, 20));
}

TEST(BackendWorkloads, DnaHistogramIsBackendInvariant)
{
    workloads::DnaConfig dcfg;
    dcfg.genomeLen = 2048;
    dcfg.binSize = 256;
    dcfg.numReads = 4;
    workloads::DnaWorkload dna(dcfg);
    const auto host = dna.repetitionHistogram();
    for (BackendKind kind : kAllBackends) {
        const auto h = dna.repetitionHistogram(kind, 2);
        ASSERT_EQ(h.total(), host.total());
        for (int64_t v = h.lo(); v <= h.hi(); ++v)
            EXPECT_EQ(h.binCount(v), host.binCount(v))
                << "bin " << v << " backend "
                << core::backendName(kind);
    }
}

TEST(BackendWorkloads, ValueHistogramIsBackendInvariant)
{
    const auto values =
        workloads::sparseUnsignedVector(96, 5, 0.3, 321);
    std::vector<uint64_t> expect(33, 0);
    for (uint64_t v : values)
        ++expect[v];
    for (BackendKind kind : kAllBackends) {
        const auto h = workloads::valueHistogram(values, kind, 2);
        for (uint64_t v = 0; v < expect.size(); ++v)
            EXPECT_EQ(h.binCount(static_cast<int64_t>(v)), expect[v])
                << "value " << v << " backend "
                << core::backendName(kind);
    }
}
