/**
 * @file
 * IARM scheduler tests (Sec. 4.5.2): the Fig. 9 walkthrough, the
 * per-digit bound invariant against arbitrary mask subsets, and the
 * ripple-count advantage over full rippling.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "jc/digits.hpp"
#include "jc/iarm.hpp"

using namespace c2m;

namespace {

/**
 * Host-side mock of one masked counter group: applies the scheduler's
 * ripples and the broadcast digit adds to a set of counters with
 * random masks, tracking each digit's effective value (JC + R*Onext,
 * must stay <= 2R-1).
 */
struct MockCounters
{
    unsigned radix;
    std::vector<std::vector<unsigned>> digits; ///< [counter][digit]

    MockCounters(unsigned radix, unsigned num_digits, size_t count)
        : radix(radix),
          digits(count, std::vector<unsigned>(num_digits, 0))
    {
    }

    void
    ripple(unsigned pos)
    {
        for (auto &c : digits) {
            if (c[pos] >= radix) {
                c[pos] -= radix;
                ASSERT_LT(pos + 1, c.size()) << "carry out of top";
                c[pos + 1] += 1;
                ASSERT_LE(c[pos + 1], 2 * radix - 1)
                    << "digit exceeded the Onext range";
            }
        }
    }

    void
    add(const std::vector<unsigned> &ds, const std::vector<bool> &mask)
    {
        for (size_t j = 0; j < digits.size(); ++j) {
            if (!mask[j])
                continue;
            for (size_t pos = 0; pos < ds.size(); ++pos) {
                digits[j][pos] += ds[pos];
                ASSERT_LE(digits[j][pos], 2 * radix - 1)
                    << "IARM failed to provide headroom";
            }
        }
    }

    uint64_t
    value(size_t j) const
    {
        uint64_t v = 0;
        for (size_t pos = digits[j].size(); pos-- > 0;)
            v = v * radix + digits[j][pos];
        return v;
    }
};

} // namespace

TEST(Iarm, Fig9Walkthrough)
{
    // Radix 10 counter initialized to 9999; repeated +9 must not
    // ripple on the first add (LSD reaches 18) and must ripple once
    // on the second (18 + 9 > 19), giving ...9,10,17 -- exactly the
    // paper's step 2 state 9,9,10,17.
    jc::IarmScheduler sched(10, 6);
    sched.applyAdd({9, 9, 9, 9});

    auto r1 = sched.prepareAdd({9});
    EXPECT_TRUE(r1.empty());
    sched.applyAdd({9});
    EXPECT_EQ(sched.bounds()[0], 18u);

    auto r2 = sched.prepareAdd({9});
    ASSERT_EQ(r2.size(), 1u);
    EXPECT_EQ(r2[0], 0u);
    sched.applyAdd({9});
    // The bound is conservative (R-1 after the ripple) + 9; the real
    // counter of Fig. 9 sits at 17, safely below it.
    EXPECT_EQ(sched.bounds()[0], 18u);
    EXPECT_EQ(sched.bounds()[1], 10u); // 9 + carry
}

TEST(Iarm, ChainResolvesHigherDigitFirst)
{
    jc::IarmScheduler sched(4, 5);
    // Fill digit 0 and digit 1 near their limits.
    for (int i = 0; i < 2; ++i) {
        sched.prepareAdd({3, 3});
        sched.applyAdd({3, 3});
    }
    // bounds now {6, 6}; adding {3,3} must ripple digit 0; digit 1
    // has headroom for the carry, so only digit 0 resolves.
    auto r = sched.prepareAdd({3, 3});
    ASSERT_GE(r.size(), 1u);
    sched.applyAdd({3, 3});
    for (unsigned b : sched.bounds())
        EXPECT_LE(b, 7u);
}

TEST(Iarm, DrainNormalizesAllDigits)
{
    jc::IarmScheduler sched(6, 5);
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        const auto digits =
            jc::toDigits(rng.nextBounded(6 * 6 * 6), 6);
        for (unsigned d : sched.prepareAdd(digits))
            (void)d;
        sched.applyAdd(digits);
    }
    sched.drain();
    for (unsigned b : sched.bounds())
        EXPECT_LT(b, 6u);
}

class IarmRadix : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(IarmRadix, BoundInvariantOverRandomMasks)
{
    const unsigned radix = GetParam();
    // Size for the worst-case total (300 adds of < R^3) + guard.
    const uint64_t max_total =
        300ULL * (static_cast<uint64_t>(radix) * radix * radix - 1);
    const unsigned num_digits =
        jc::digitsForCapacity(radix, max_total + 1) + 1;
    const size_t counters = 16;
    jc::IarmScheduler sched(radix, num_digits);
    MockCounters mock(radix, num_digits, counters);
    Rng rng(1000 + radix);

    std::vector<std::vector<bool>> masks(counters);
    std::vector<uint64_t> expected(counters, 0);

    for (int step = 0; step < 300; ++step) {
        const uint64_t v =
            1 + rng.nextBounded(static_cast<uint64_t>(radix) * radix *
                                    radix -
                                1);
        const auto digits = jc::toDigits(v, radix);
        std::vector<bool> mask(counters);
        for (size_t j = 0; j < counters; ++j)
            mask[j] = rng.nextBool(0.5);

        for (unsigned pos : sched.prepareAdd(digits))
            mock.ripple(pos);
        sched.applyAdd(digits);
        mock.add(digits, mask);

        for (size_t j = 0; j < counters; ++j)
            if (mask[j])
                expected[j] += v;

        // Invariant: every real digit is bounded by the virtual one.
        for (size_t j = 0; j < counters; ++j)
            for (unsigned pos = 0; pos < num_digits; ++pos)
                ASSERT_LE(mock.digits[j][pos], sched.bounds()[pos])
                    << "radix=" << radix << " step=" << step;
    }

    for (size_t j = 0; j < counters; ++j)
        EXPECT_EQ(mock.value(j), expected[j]) << "counter " << j;
}

TEST_P(IarmRadix, FewerRipplesThanFullPropagation)
{
    const unsigned radix = GetParam();
    const unsigned num_digits =
        jc::digitsForCapacity(radix, 200ULL * 255 + 1) + 1;
    jc::IarmScheduler iarm(radix, num_digits);
    jc::FullRippleScheduler full(radix, num_digits);
    Rng rng(7);

    for (int i = 0; i < 200; ++i) {
        const auto digits =
            jc::toDigits(1 + rng.nextBounded(255), radix);
        for (unsigned d : iarm.prepareAdd(digits))
            (void)d;
        iarm.applyAdd(digits);
        full.prepareAdd(digits);
        full.afterAdd();
    }
    EXPECT_LT(iarm.ripplesIssued(), full.ripplesIssued())
        << "radix=" << radix;
}

INSTANTIATE_TEST_SUITE_P(Radices, IarmRadix,
                         ::testing::Values(2u, 4u, 6u, 8u, 10u, 16u,
                                           20u));

TEST(Iarm, PanicsOnTopDigitOverflowIsGuarded)
{
    // A counter sized with a guard digit should never hit the panic;
    // we simply verify that staying within capacity works.
    jc::IarmScheduler sched(4, jc::digitsForCapacityBits(4, 16) + 1);
    Rng rng(9);
    uint64_t total = 0;
    while (total < (1ULL << 16) - 256) {
        const uint64_t v = 1 + rng.nextBounded(255);
        const auto digits = jc::toDigits(v, 4);
        for (unsigned d : sched.prepareAdd(digits))
            (void)d;
        sched.applyAdd(digits);
        total += v;
    }
    SUCCEED();
}
