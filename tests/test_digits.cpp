/**
 * @file
 * Radix decomposition, CSD recoding, and the Fig. 19 capacity math.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "jc/digits.hpp"

using namespace c2m;

TEST(Digits, ToDigitsBase10)
{
    const auto d = jc::toDigits(4095, 10);
    ASSERT_EQ(d.size(), 4u);
    EXPECT_EQ(d[0], 5u);
    EXPECT_EQ(d[1], 9u);
    EXPECT_EQ(d[2], 0u);
    EXPECT_EQ(d[3], 4u);
}

TEST(Digits, ZeroHasOneDigit)
{
    const auto d = jc::toDigits(0, 4);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0], 0u);
}

TEST(Digits, RoundTripRandom)
{
    Rng rng(1);
    for (unsigned radix : {2u, 4u, 6u, 8u, 10u, 16u, 20u}) {
        for (int i = 0; i < 200; ++i) {
            const uint64_t v = rng.nextBounded(1ULL << 48);
            EXPECT_EQ(jc::fromDigits(jc::toDigits(v, radix), radix),
                      v)
                << "radix=" << radix;
        }
    }
}

TEST(Digits, DigitSumAndNonzero)
{
    EXPECT_EQ(jc::digitSum(45, 10), 9u);    // 4 + 5
    EXPECT_EQ(jc::numNonzeroDigits(45, 10), 2u);
    EXPECT_EQ(jc::numNonzeroDigits(405, 10), 2u);
    EXPECT_EQ(jc::digitSum(0, 10), 0u);
    EXPECT_EQ(jc::numNonzeroDigits(0, 10), 0u);
}

TEST(Digits, DigitsForCapacity)
{
    EXPECT_EQ(jc::digitsForCapacity(10, 100), 2u);
    EXPECT_EQ(jc::digitsForCapacity(10, 101), 3u);
    EXPECT_EQ(jc::digitsForCapacity(2, 256), 8u);
    EXPECT_EQ(jc::digitsForCapacityBits(4, 32), 16u);
    EXPECT_EQ(jc::digitsForCapacityBits(4, 64), 32u);
    EXPECT_EQ(jc::digitsForCapacityBits(16, 64), 16u);
}

TEST(Digits, Fig19PaperAnchors)
{
    // "DNA short-read filtering only requires a capacity of 100 which
    //  can be achieved with 10 bits in radix 10 counters or 7 bits in
    //  binary." (Sec. 7.3.3)
    EXPECT_EQ(jc::bitsForCapacity(10, 100), 10u);
    EXPECT_EQ(jc::binaryBitsForCapacity(100), 7u);
    // Radix-4 counters have the same density as binary for
    // power-of-4 capacities.
    EXPECT_EQ(jc::bitsForCapacity(4, 1ULL << 16), 16u);
    EXPECT_EQ(jc::binaryBitsForCapacity(1ULL << 16), 16u);
}

TEST(Digits, BinaryBitsMonotone)
{
    unsigned prev = 0;
    for (uint64_t cap = 2; cap < (1ULL << 20); cap *= 3) {
        const unsigned bits = jc::binaryBitsForCapacity(cap);
        EXPECT_GE(bits, prev);
        prev = bits;
        EXPECT_GE((__uint128_t{1} << bits), cap);
        EXPECT_LT((__uint128_t{1} << (bits - 1)), cap);
    }
}

TEST(Csd, SimpleValues)
{
    EXPECT_EQ(jc::fromCsd(jc::toCsd(0)), 0);
    EXPECT_EQ(jc::fromCsd(jc::toCsd(1)), 1);
    EXPECT_EQ(jc::fromCsd(jc::toCsd(-1)), -1);
    EXPECT_EQ(jc::fromCsd(jc::toCsd(7)), 7);
    EXPECT_EQ(jc::fromCsd(jc::toCsd(-100)), -100);
}

TEST(Csd, SevenUsesMinimalNonzeros)
{
    // 7 = 8 - 1: CSD should be [-1, 0, 0, +1], two nonzeros.
    const auto csd = jc::toCsd(7);
    unsigned nonzeros = 0;
    for (auto d : csd)
        if (d != 0)
            ++nonzeros;
    EXPECT_EQ(nonzeros, 2u);
}

TEST(Csd, NoAdjacentNonzeros)
{
    Rng rng(2);
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = rng.nextRange(-100000, 100000);
        const auto csd = jc::toCsd(v);
        for (size_t j = 0; j + 1 < csd.size(); ++j)
            EXPECT_FALSE(csd[j] != 0 && csd[j + 1] != 0)
                << "adjacent nonzeros for v=" << v;
        EXPECT_EQ(jc::fromCsd(csd), v);
    }
}

TEST(Csd, DigitsAreTernary)
{
    Rng rng(3);
    for (int i = 0; i < 500; ++i) {
        const int64_t v = rng.nextRange(-(1 << 20), 1 << 20);
        for (auto d : jc::toCsd(v))
            EXPECT_TRUE(d == -1 || d == 0 || d == 1);
    }
}

TEST(Csd, Int8RangeFitsNineSlices)
{
    for (int v = -128; v <= 127; ++v)
        EXPECT_LE(jc::toCsd(v).size(), 9u);
}
