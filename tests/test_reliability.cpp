/**
 * @file
 * Reliability-subsystem tests: canonical-image encoding against the
 * live fabric, RowCodec round trips at random geometry, scrub-under-
 * concurrent-ingest exactness (the subsystem's acceptance property:
 * scrubbed runs end bit-identical to fault-free serial replay while
 * unscrubbed runs at the same fault rate do not), standalone and
 * budgeted sweeps, mirror-store decay, TMR replicas, NVM fabrics,
 * and the health monitor's estimator/retuning behavior.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "core/sharded.hpp"
#include "ecc/rowcodec.hpp"
#include "reliability/health.hpp"
#include "reliability/mirror.hpp"
#include "reliability/scrubber.hpp"
#include "service/ingest.hpp"

using namespace c2m;
using namespace c2m::core;
using c2m::reliability::HealthConfig;
using c2m::reliability::HealthMonitor;
using c2m::reliability::RowMirror;
using c2m::reliability::ScrubConfig;
using c2m::reliability::Scrubber;
using c2m::reliability::ScrubObservation;

namespace {

EngineConfig
faultyConfig(size_t counters, double fault_rate, uint64_t seed)
{
    EngineConfig cfg;
    cfg.numCounters = counters;
    cfg.capacityBits = 24;
    cfg.faultRate = fault_rate;
    cfg.seed = seed;
    return cfg;
}

std::vector<BatchOp>
randomOps(size_t count, size_t counters, uint64_t seed,
          bool with_negatives)
{
    Rng rng(seed);
    std::vector<BatchOp> ops;
    ops.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        int64_t v = 1 + static_cast<int64_t>(rng.nextBounded(40));
        if (with_negatives && rng.nextBool(0.3))
            v = -v;
        ops.push_back({rng.nextBounded(counters), v, 0});
    }
    return ops;
}

std::vector<int64_t>
faultFreeReference(const EngineConfig &cfg,
                   std::span<const BatchOp> ops)
{
    EngineConfig clean = cfg;
    clean.faultRate = 0.0;
    return replaySerial(clean, ops);
}

} // namespace

// ---------------------------------------------------------------------
// Canonical counter images (the mirror's correctness foundation)
// ---------------------------------------------------------------------

class CanonicalEncode
    : public ::testing::TestWithParam<std::tuple<unsigned, bool>>
{
};

TEST_P(CanonicalEncode, MatchesDrainedFabricRows)
{
    const unsigned radix = std::get<0>(GetParam());
    const bool with_negatives = std::get<1>(GetParam());

    EngineConfig cfg;
    cfg.radix = radix;
    cfg.capacityBits = 20;
    cfg.numCounters = 48;
    cfg.maxMaskRows = 2;
    cfg.seed = 100 + radix;
    C2MEngine eng(cfg);

    Rng rng(7 * radix + with_negatives);
    std::vector<uint8_t> mask(cfg.numCounters);
    const unsigned h = eng.addMask(mask);
    std::vector<int64_t> expect(cfg.numCounters, 0);
    for (int it = 0; it < 120; ++it) {
        for (auto &b : mask)
            b = rng.nextBool(0.4);
        eng.setMask(h, mask);
        int64_t v = 1 + static_cast<int64_t>(rng.nextBounded(200));
        if (with_negatives && rng.nextBool(0.4))
            v = -v;
        eng.accumulateSigned(v, h);
        for (size_t c = 0; c < mask.size(); ++c)
            if (mask[c])
                expect[c] += v;
    }
    eng.drain(0);

    RowMirror mirror(eng.layout(0), cfg.numCounters);
    mirror.encodeValues(expect);
    for (size_t r = 0; r < mirror.numRows(); ++r) {
        const unsigned row = mirror.fabricRow(eng.layout(0), r);
        EXPECT_EQ(eng.backend().scrubReadRow(row), mirror.dataBits(r))
            << "mirror row " << r;
    }
    // And the mirror decodes back to the exact values.
    EXPECT_EQ(mirror.decodeValues(), expect);
}

INSTANTIATE_TEST_SUITE_P(
    Radixes, CanonicalEncode,
    ::testing::Combine(::testing::Values(4u, 6u, 10u, 16u),
                       ::testing::Bool()));

// ---------------------------------------------------------------------
// RowCodec batch + scrub path at random geometry
// ---------------------------------------------------------------------

TEST(RowCodecRoundTrip, RandomWidthsEncodeDecode)
{
    Rng rng(21);
    for (int trial = 0; trial < 40; ++trial) {
        const size_t width = 1 + rng.nextBounded(400);
        ecc::RowCodec codec(width);
        std::vector<BitVector> rows(
            3, BitVector(codec.totalBits()));
        for (auto &row : rows)
            for (size_t i = 0; i < width; ++i)
                row.set(i, rng.nextBool(0.5));
        codec.encodeRows(rows);
        for (const auto &row : rows)
            EXPECT_TRUE(codec.checkRow(row));

        // A single flip in one row is healed by the batch pass.
        const std::vector<BitVector> clean = rows;
        const size_t victim = rng.nextBounded(width);
        rows[1].set(victim, !rows[1].get(victim));
        const auto res = codec.correctRows(rows);
        EXPECT_EQ(res.corrected, 1u);
        EXPECT_EQ(res.uncorrectable, 0u);
        for (size_t r = 0; r < rows.size(); ++r) {
            EXPECT_TRUE(codec.checkRow(rows[r]));
            EXPECT_EQ(rows[r], clean[r]);
        }
    }
}

TEST(RowCodecScrub, CorrectsSingleFlipsRecoversDenseOnes)
{
    Rng rng(22);
    for (int trial = 0; trial < 30; ++trial) {
        const size_t width = 65 + rng.nextBounded(300);
        ecc::RowCodec codec(width);
        BitVector trusted(codec.totalBits());
        for (size_t i = 0; i < width; ++i)
            trusted.set(i, rng.nextBool(0.5));
        codec.encodeRow(trusted);

        // Fabric copy with one sparse flip and one dense word.
        BitVector fabric(width);
        for (size_t i = 0; i < width; ++i)
            fabric.set(i, trusted.get(i));
        const size_t sparse = rng.nextBounded(std::min<size_t>(64, width));
        fabric.set(sparse, !fabric.get(sparse));
        size_t dense_word = width > 64 ? 1 : 0;
        size_t flipped_dense = 0;
        for (size_t b = 0; b < 3; ++b) {
            const size_t pos = dense_word * 64 + b;
            if (pos < width && pos != sparse) {
                fabric.set(pos, !fabric.get(pos));
                ++flipped_dense;
            }
        }
        const auto res = codec.scrubRow(fabric, trusted);
        EXPECT_GE(res.corrected, 1u);
        if (flipped_dense >= 2) {
            EXPECT_GE(res.uncorrectable, 1u);
        }
        for (size_t i = 0; i < width; ++i)
            EXPECT_EQ(fabric.get(i), trusted.get(i)) << "bit " << i;
    }
}

// ---------------------------------------------------------------------
// Scrubbed ingest == fault-free replay (the acceptance property)
// ---------------------------------------------------------------------

TEST(ReliabilityIngest, ScrubbedRunMatchesFaultFreeReplay)
{
    const auto cfg = faultyConfig(96, 1e-3, 11);
    const auto ops = randomOps(3000, cfg.numCounters, 5, true);
    const auto ref = faultFreeReference(cfg, ops);

    ShardedEngine eng(cfg, 4);
    // The observer must outlive the service (stop() hands it a final
    // sweep), so the scrubber is constructed first.
    Scrubber scrub(eng, {});
    service::IngestService svc(eng, {});
    svc.attachObserver(&scrub);

    // Producers run while the scrubber corrects injected faults at
    // every epoch boundary (the TSan job covers this interleaving).
    service::submitConcurrent(svc, ops, 4);
    const auto snap = svc.snapshot();
    EXPECT_EQ(snap.counters, ref);

    const auto st = scrub.stats();
    EXPECT_GT(st.sweeps, 0u);
    EXPECT_GT(st.rowsScrubbed, 0u);
    EXPECT_GT(st.faultyBits, 0u);
    EXPECT_GT(st.bitsCorrected + st.wordsRecovered, 0u);
    EXPECT_EQ(st.mirrorWordsLost, 0u);

    // Scrub + fault activity surfaces in the merged service report.
    const auto report = svc.report();
    EXPECT_GT(report.at("reliability.sweeps"), 0u);
    EXPECT_GT(report.at("engine.fabric.faults_injected"), 0u);
    EXPECT_GT(report.at("engine.fabric.tra"), 0u);
    ASSERT_TRUE(report.count("health.fault_rate_ppt"));
}

TEST(ReliabilityIngest, ScrubbedPlannerDrainMatchesFaultFreeReplay)
{
    // Column-parallel drain plans under live CIM faults: the journal
    // records the planned (coalesced) deltas, so sweeps reconstruct
    // the exact expected image and the run ends bit-identical to a
    // fault-free serial replay — with far fewer fabric programs.
    const auto cfg = faultyConfig(96, 1e-3, 23);
    const auto ops = randomOps(3000, cfg.numCounters, 7, false);
    const auto ref = faultFreeReference(cfg, ops);

    ShardedEngine eng(cfg, 4);
    Scrubber scrub(eng, {});
    service::IngestConfig icfg;
    icfg.minDrainOps = 256; // real coalesced buckets per epoch
    icfg.queueCapacity = ops.size();
    service::IngestService svc(eng, icfg);
    svc.attachObserver(&scrub);

    service::submitConcurrent(svc, ops, 4);
    const auto snap = svc.snapshot();
    EXPECT_EQ(snap.counters, ref);

    // The plans actually engaged (this is not fallback coverage),
    // and the scrubber journaled every planned delta.
    const auto est = svc.engineStats();
    EXPECT_GT(est.plansExecuted, 0u);
    EXPECT_GT(est.plannedOps, 0u);
    const auto st = scrub.stats();
    EXPECT_GT(st.sweeps, 0u);
    EXPECT_GT(st.opsJournaled, 0u);
    EXPECT_EQ(st.mirrorWordsLost, 0u);
}

TEST(ReliabilityIngest, PlannerOffScrubbedRunStaysExactToo)
{
    auto cfg = faultyConfig(64, 1e-3, 29);
    cfg.drainPlanner = false;
    const auto ops = randomOps(1500, cfg.numCounters, 13, false);
    const auto ref = faultFreeReference(cfg, ops);

    ShardedEngine eng(cfg, 4);
    Scrubber scrub(eng, {});
    service::IngestService svc(eng, {});
    svc.attachObserver(&scrub);
    service::submitConcurrent(svc, ops, 2);
    EXPECT_EQ(svc.snapshot().counters, ref);
    EXPECT_EQ(svc.engineStats().plansExecuted, 0u);
}

TEST(ReliabilityIngest, UnscrubbedRunShowsUncorrectedErrors)
{
    const auto cfg = faultyConfig(96, 1e-3, 11);
    const auto ops = randomOps(3000, cfg.numCounters, 5, true);
    const auto ref = faultFreeReference(cfg, ops);

    ShardedEngine eng(cfg, 4);
    service::IngestService svc(eng, {});
    service::submitConcurrent(svc, ops, 4);
    const auto snap = svc.snapshot();

    size_t wrong = 0;
    for (size_t i = 0; i < ref.size(); ++i)
        wrong += snap.counters[i] != ref[i];
    EXPECT_GT(wrong, 0u);
}

TEST(ReliabilityIngest, StragglersScrubbedOnStop)
{
    const auto cfg = faultyConfig(64, 2e-3, 17);
    const auto ops = randomOps(1200, cfg.numCounters, 9, false);
    const auto ref = faultFreeReference(cfg, ops);

    ShardedEngine eng(cfg, 2);
    // A sparse cadence defers most sweeps; stop() must reconcile
    // everything the interval spacing left behind.
    ScrubConfig scfg;
    scfg.interval = 16;
    Scrubber scrub(eng, scfg);
    service::IngestService svc(eng, {});
    svc.attachObserver(&scrub);
    svc.submit(ops);
    svc.stop(); // applies queue stragglers inline + onStop full sweep

    EXPECT_EQ(eng.readAllCounters(0), ref);
    EXPECT_GT(scrub.stats().sweeps, 0u);
}

TEST(ReliabilityIngest, ObserverDetachesWhileIdle)
{
    const auto cfg = faultyConfig(32, 0.0, 91);
    ShardedEngine eng(cfg, 2);
    Scrubber scrub(eng, {});
    service::IngestService svc(eng, {});
    svc.attachObserver(&scrub);
    svc.submit(randomOps(100, cfg.numCounters, 93, false));
    svc.flushAndWait();
    ASSERT_GT(svc.report().count("reliability.sweeps"), 0u);

    svc.attachObserver(nullptr); // documented idle detach
    svc.submit(randomOps(50, cfg.numCounters, 95, false));
    svc.flushAndWait();
    EXPECT_EQ(svc.report().count("reliability.sweeps"), 0u);
}

// ---------------------------------------------------------------------
// Standalone mode, budget, decay, TMR, NVM
// ---------------------------------------------------------------------

TEST(ScrubberStandalone, BatchesNotedAndSweptExactly)
{
    const auto cfg = faultyConfig(80, 1e-3, 23);
    const auto ops = randomOps(2500, cfg.numCounters, 31, true);
    const auto ref = faultFreeReference(cfg, ops);

    ShardedEngine eng(cfg, 4);
    Scrubber scrub(eng, {});
    const size_t chunk = 250;
    for (size_t lo = 0; lo < ops.size(); lo += chunk) {
        const auto part = std::span<const BatchOp>(ops).subspan(
            lo, std::min(chunk, ops.size() - lo));
        eng.accumulateBatch(part);
        scrub.noteBatch(part);
        scrub.boundary();
    }
    EXPECT_EQ(eng.readAllCounters(0), ref);
    EXPECT_GT(scrub.stats().sweeps, 0u);
}

TEST(ScrubberStandalone, BudgetRotatesAndScrubAllRecovers)
{
    const auto cfg = faultyConfig(80, 2e-3, 29);
    const auto ops = randomOps(2000, cfg.numCounters, 37, false);
    const auto ref = faultFreeReference(cfg, ops);

    ShardedEngine eng(cfg, 4);
    ScrubConfig scfg;
    scfg.maxShardsPerBoundary = 1; // sweep one shard per boundary
    Scrubber scrub(eng, scfg);
    const size_t chunk = 200;
    for (size_t lo = 0; lo < ops.size(); lo += chunk) {
        const auto part = std::span<const BatchOp>(ops).subspan(
            lo, std::min(chunk, ops.size() - lo));
        eng.accumulateBatch(part);
        scrub.noteBatch(part);
        scrub.boundary();
    }
    // Budgeted sweeps leave unswept shards behind; a full sweep
    // restores exactness.
    scrub.scrubAll();
    EXPECT_EQ(eng.readAllCounters(0), ref);
    // The budget really limited per-boundary work: sweeps < what
    // interval=1 without a budget would have run.
    EXPECT_LT(scrub.stats().sweeps,
              (ops.size() / chunk) * eng.numShards() + 4);
}

TEST(ScrubberStandalone, MirrorStoreDecayIsSelfHealed)
{
    const auto cfg = faultyConfig(72, 1e-3, 41);
    const auto ops = randomOps(1500, cfg.numCounters, 43, false);
    const auto ref = faultFreeReference(cfg, ops);

    ShardedEngine eng(cfg, 3);
    ScrubConfig scfg;
    scfg.storeFaultRate = 2e-4; // side store decays too
    Scrubber scrub(eng, scfg);
    const size_t chunk = 150;
    for (size_t lo = 0; lo < ops.size(); lo += chunk) {
        const auto part = std::span<const BatchOp>(ops).subspan(
            lo, std::min(chunk, ops.size() - lo));
        eng.accumulateBatch(part);
        scrub.noteBatch(part);
        scrub.boundary();
    }
    EXPECT_EQ(eng.readAllCounters(0), ref);
    EXPECT_GT(scrub.stats().mirrorBitsCorrected, 0u);
    EXPECT_EQ(scrub.stats().mirrorWordsLost, 0u);
}

TEST(ScrubberProtection, TmrReplicasAreSwept)
{
    auto cfg = faultyConfig(48, 1e-3, 47);
    cfg.protection = Protection::Tmr;
    const auto ops = randomOps(800, cfg.numCounters, 53, false);
    const auto ref = faultFreeReference(cfg, ops);

    ShardedEngine eng(cfg, 2);
    Scrubber scrub(eng, {});
    eng.accumulateBatch(ops);
    scrub.noteBatch(ops);
    scrub.boundary();
    EXPECT_EQ(eng.readAllCounters(0), ref);
    // Three replicas tripled the swept rows relative to one group.
    EXPECT_EQ(scrub.stats().rowsScrubbed % 3, 0u);
}

TEST(ScrubberProtection, NvmFabricIsScrubbable)
{
    auto cfg = faultyConfig(64, 1e-3, 59);
    cfg.backend = BackendKind::NvmPinatubo;
    const auto ops = randomOps(1200, cfg.numCounters, 61, true);
    const auto ref = faultFreeReference(cfg, ops);

    ShardedEngine eng(cfg, 2);
    ASSERT_TRUE(Scrubber::supports(eng));
    Scrubber scrub(eng, {});
    const size_t chunk = 200;
    for (size_t lo = 0; lo < ops.size(); lo += chunk) {
        const auto part = std::span<const BatchOp>(ops).subspan(
            lo, std::min(chunk, ops.size() - lo));
        eng.accumulateBatch(part);
        scrub.noteBatch(part);
        scrub.boundary();
    }
    EXPECT_EQ(eng.readAllCounters(0), ref);
}

TEST(ScrubberProtection, RcaFabricIsNotScrubbable)
{
    auto cfg = faultyConfig(64, 0.0, 67);
    cfg.backend = BackendKind::Rca;
    ShardedEngine eng(cfg, 2);
    EXPECT_FALSE(Scrubber::supports(eng));
}

// ---------------------------------------------------------------------
// Health monitor and adaptive protection
// ---------------------------------------------------------------------

TEST(HealthMonitor, EstimatesLiveFaultRateFromScrubOutcomes)
{
    const double injected = 2e-3;
    const auto cfg = faultyConfig(96, injected, 71);
    const auto ops = randomOps(4000, cfg.numCounters, 73, false);

    ShardedEngine eng(cfg, 4);
    Scrubber scrub(eng, {});
    const size_t chunk = 400;
    for (size_t lo = 0; lo < ops.size(); lo += chunk) {
        const auto part = std::span<const BatchOp>(ops).subspan(
            lo, std::min(chunk, ops.size() - lo));
        eng.accumulateBatch(part);
        scrub.noteBatch(part);
        scrub.boundary();
    }
    const double est = scrub.health().estimatedFaultRate();
    // Blind estimate from persisted flips: same order of magnitude.
    EXPECT_GT(est, injected / 10);
    EXPECT_LT(est, injected * 10);
}

TEST(HealthMonitor, RecommendationsScaleWithObservedRate)
{
    HealthConfig hcfg;
    hcfg.targetUndetectedRate = 1e-12;
    HealthMonitor quiet(hcfg), noisy(hcfg);
    quiet.observe({/*faultyBits=*/1, /*traDelta=*/1'000'000,
                   /*rowBits=*/512, /*wordsSwept=*/100'000,
                   /*boundaries=*/1});
    noisy.observe({/*faultyBits=*/50'000, /*traDelta=*/1'000'000,
                   /*rowBits=*/512, /*wordsSwept=*/100'000,
                   /*boundaries=*/1});
    EXPECT_LT(quiet.estimatedFaultRate(), noisy.estimatedFaultRate());
    EXPECT_LE(quiet.recommendedFrChecks(),
              noisy.recommendedFrChecks());
    EXPECT_GE(quiet.recommendedInterval(),
              noisy.recommendedInterval());
    // Undetected-error projection improves with more FR checks.
    EXPECT_LT(noisy.projectedUndetectedRate(3),
              noisy.projectedUndetectedRate(1));
}

TEST(HealthMonitor, AdaptiveRetuneKeepsRunsExact)
{
    auto cfg = faultyConfig(64, 5e-3, 79);
    cfg.protection = Protection::Ecc;
    cfg.frChecks = 1;
    const auto ops = randomOps(1500, cfg.numCounters, 83, false);
    const auto ref = faultFreeReference(cfg, ops);

    ShardedEngine eng(cfg, 2);
    ScrubConfig scfg;
    scfg.adaptive = true;
    scfg.health.targetUndetectedRate = 1e-15; // force retunes at 5e-3
    Scrubber scrub(eng, scfg);
    const size_t chunk = 150;
    for (size_t lo = 0; lo < ops.size(); lo += chunk) {
        const auto part = std::span<const BatchOp>(ops).subspan(
            lo, std::min(chunk, ops.size() - lo));
        eng.accumulateBatch(part);
        scrub.noteBatch(part);
        scrub.boundary();
    }
    scrub.scrubAll();
    EXPECT_EQ(eng.readAllCounters(0), ref);
    EXPECT_GT(scrub.stats().frRetunes, 0u);
    EXPECT_GE(scrub.health().recommendedFrChecks(), 2u);
}
