/**
 * @file
 * Kernel tests (Sec. 5.2): integer-binary and integer-ternary
 * GEMV/GEMM, CSD bit-sliced integer-integer products, and the
 * SIMDRAM baseline kernels -- all verified against plain references.
 */

#include <gtest/gtest.h>

#include "core/bitslice.hpp"
#include "core/kernels.hpp"
#include "workloads/sparsity.hpp"

using namespace c2m;
using namespace c2m::core;

namespace {

EngineConfig
kernelConfig(size_t n, unsigned mask_rows, unsigned groups = 1)
{
    EngineConfig cfg;
    cfg.radix = 4;
    cfg.capacityBits = 24;
    cfg.numCounters = n;
    cfg.maxMaskRows = mask_rows;
    cfg.numGroups = groups;
    return cfg;
}

} // namespace

TEST(Kernels, GemvIntBinaryMatchesReference)
{
    const size_t K = 12, N = 24;
    const auto Z = workloads::randomBinaryMatrix(K, N, 0.4, 3);
    const auto x = workloads::sparseUnsignedVector(K, 8, 0.1, 4);

    C2MEngine eng(kernelConfig(N, K));
    EXPECT_EQ(gemvIntBinary(eng, x, Z), refGemvBinary(x, Z));
}

TEST(Kernels, GemvIntBinaryAllOnesMask)
{
    const size_t K = 5, N = 8;
    std::vector<std::vector<uint8_t>> Z(K,
                                        std::vector<uint8_t>(N, 1));
    const std::vector<uint64_t> x = {1, 2, 3, 4, 5};
    C2MEngine eng(kernelConfig(N, K));
    const auto y = gemvIntBinary(eng, x, Z);
    for (auto v : y)
        EXPECT_EQ(v, 15);
}

TEST(Kernels, GemvIntTernaryMatchesReference)
{
    const size_t K = 10, N = 20;
    const auto Z = workloads::randomTernaryMatrix(K, N, 0.6, 5);
    const auto x = workloads::sparseSignedVector(K, 6, 0.2, 6);

    C2MEngine eng(kernelConfig(N, 2 * K, 2));
    EXPECT_EQ(gemvIntTernary(eng, x, Z), refGemvTernary(x, Z));
}

TEST(Kernels, GemvTernaryNegativeInputsSwapRails)
{
    const std::vector<std::vector<int8_t>> Z = {{1, -1, 0}};
    const std::vector<int64_t> x = {-7};
    C2MEngine eng(kernelConfig(3, 2, 2));
    const auto y = gemvIntTernary(eng, x, Z);
    EXPECT_EQ(y, (std::vector<int64_t>{-7, 7, 0}));
}

TEST(Kernels, GemmIntTernaryMatchesReference)
{
    const size_t M = 4, K = 8, N = 12;
    const auto Z = workloads::randomTernaryMatrix(K, N, 0.5, 7);
    std::vector<std::vector<int64_t>> X;
    for (size_t r = 0; r < M; ++r)
        X.push_back(workloads::sparseSignedVector(K, 5, 0.2, 80 + r));

    C2MEngine eng(kernelConfig(N, 2 * K, 2));
    EXPECT_EQ(gemmIntTernary(eng, X, Z), refGemmTernary(X, Z));
}

TEST(Kernels, GemmReusesMasksAcrossRows)
{
    const size_t M = 3, K = 4, N = 6;
    const auto Z = workloads::randomTernaryMatrix(K, N, 0.7, 9);
    std::vector<std::vector<int64_t>> X(
        M, std::vector<int64_t>(K, 1));
    C2MEngine eng(kernelConfig(N, 2 * K, 2));
    const auto Y = gemmIntTernary(eng, X, Z);
    // All rows of X identical => identical output rows.
    EXPECT_EQ(Y[0], Y[1]);
    EXPECT_EQ(Y[1], Y[2]);
    // Mask rows were added once (2K), not per output row.
    EXPECT_EQ(eng.numMasks(), 2 * K);
}

TEST(Bitslice, CsdGemvMatchesReferenceInt8)
{
    const size_t K = 6, N = 10;
    std::vector<std::vector<int64_t>> Z(K,
                                        std::vector<int64_t>(N));
    Rng rng(11);
    for (auto &row : Z)
        for (auto &v : row)
            v = rng.nextRange(-128, 127);
    const auto x = workloads::sparseSignedVector(K, 5, 0.0, 12);

    EngineConfig cfg = kernelConfig(N, 2 * csdSlices(8), 2);
    cfg.capacityBits = 32;
    C2MEngine eng(cfg);
    EXPECT_EQ(gemvIntIntCsd(eng, x, Z, 8), refGemvInt(x, Z));
}

TEST(Bitslice, CsdGemvPowerOfTwoWeights)
{
    const std::vector<std::vector<int64_t>> Z = {{64, -32, 1, 0}};
    const std::vector<int64_t> x = {3};
    EngineConfig cfg = kernelConfig(4, 2 * csdSlices(8), 2);
    cfg.capacityBits = 32;
    C2MEngine eng(cfg);
    EXPECT_EQ(gemvIntIntCsd(eng, x, Z, 8),
              (std::vector<int64_t>{192, -96, 3, 0}));
}

TEST(Bitslice, SliceCount)
{
    EXPECT_EQ(csdSlices(8), 9u);
    EXPECT_EQ(csdSlices(4), 5u);
}

TEST(SimdramKernels, GemvTernaryMatchesReference)
{
    const size_t K = 8, N = 16;
    const auto Z = workloads::randomTernaryMatrix(K, N, 0.6, 13);
    const auto x = workloads::sparseSignedVector(K, 6, 0.1, 14);

    SimdramConfig cfg;
    cfg.accBits = 24;
    cfg.numElements = N;
    cfg.maxMaskRows = 2 * K;
    SimdramEngine eng(cfg);
    EXPECT_EQ(simdramGemvTernary(eng, x, Z), refGemvTernary(x, Z));
}

TEST(SimdramKernels, CannotSkipZeros)
{
    const size_t K = 6, N = 4;
    const auto Z = workloads::randomTernaryMatrix(K, N, 0.5, 15);
    const std::vector<int64_t> zeros(K, 0);

    SimdramConfig cfg;
    cfg.accBits = 16;
    cfg.numElements = N;
    cfg.maxMaskRows = 2 * K;
    SimdramEngine eng(cfg);
    const auto before = eng.subarray().stats().commands();
    const auto y = simdramGemvTernary(eng, zeros, Z);
    // All-zero input still costs the full 2K ripples.
    EXPECT_GT(eng.subarray().stats().commands() - before,
              2 * K * 16 * 10);
    for (auto v : y)
        EXPECT_EQ(v, 0);
}

TEST(SimdramEngineTest, SignedAccumulateTwoComplement)
{
    SimdramConfig cfg;
    cfg.accBits = 16;
    cfg.numElements = 8;
    cfg.maxMaskRows = 2;
    SimdramEngine eng(cfg);
    const unsigned h = eng.addMask(std::vector<uint8_t>(8, 1));
    eng.accumulateSigned(5, h);
    eng.accumulateSigned(-12, h);
    for (auto v : eng.readSigned())
        EXPECT_EQ(v, -7);
}

TEST(Kernels, C2mCheaperThanSimdramOnSameWork)
{
    // The headline claim at kernel granularity: accumulating small
    // values into wide counters costs C2M far fewer commands.
    const size_t K = 8, N = 16;
    const auto Z = workloads::randomTernaryMatrix(K, N, 0.6, 17);
    const auto x = workloads::sparseSignedVector(K, 4, 0.0, 18);

    EngineConfig ccfg = kernelConfig(N, 2 * K, 2);
    ccfg.capacityBits = 32;
    C2MEngine c2m_eng(ccfg);
    gemvIntTernary(c2m_eng, x, Z);
    const auto c2m_cmds = c2m_eng.subarray().stats().commands();

    SimdramConfig scfg;
    scfg.accBits = 32;
    scfg.numElements = N;
    scfg.maxMaskRows = 2 * K;
    SimdramEngine sd_eng(scfg);
    simdramGemvTernary(sd_eng, x, Z);
    const auto sd_cmds = sd_eng.subarray().stats().commands();

    EXPECT_LT(c2m_cmds, sd_cmds);
}
