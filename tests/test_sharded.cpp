/**
 * @file
 * Sharded batch engine tests: shard-vs-single-engine equivalence on
 * random point-update streams (unsigned, signed, ECC, TMR), sliced
 * broadcast masks, tensor-op fan-out, determinism across thread
 * counts, stats merging, and the batched workload histograms.
 */

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.hpp"
#include "core/sharded.hpp"
#include "workloads/dna.hpp"
#include "workloads/sparsity.hpp"

using namespace c2m;
using core::BatchOp;
using core::C2MEngine;
using core::EngineConfig;
using core::EngineStats;
using core::Protection;
using core::ShardedEngine;

namespace {

EngineConfig
baseConfig(size_t counters = 64, unsigned radix = 4)
{
    EngineConfig cfg;
    cfg.radix = radix;
    cfg.capacityBits = 20;
    cfg.numCounters = counters;
    cfg.maxMaskRows = 8;
    return cfg;
}

std::vector<BatchOp>
randomOps(size_t n, size_t counters, uint64_t seed,
          bool with_negatives)
{
    Rng rng(seed);
    std::vector<BatchOp> ops;
    ops.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        BatchOp op;
        op.counter = rng.nextBounded(counters);
        op.value = static_cast<int64_t>(rng.nextBounded(60));
        if (with_negatives && rng.nextBool(0.4))
            op.value = -op.value;
        op.group = 0;
        ops.push_back(op);
    }
    return ops;
}

/** Reference: the same op stream on one engine over the full space. */
std::vector<int64_t>
runSingle(const EngineConfig &cfg, const std::vector<BatchOp> &ops,
          unsigned group = 0)
{
    C2MEngine eng(cfg);
    const unsigned h =
        eng.addMask(std::vector<uint8_t>(cfg.numCounters, 0));
    size_t current = std::numeric_limits<size_t>::max();
    for (const auto &op : ops) {
        if (op.counter != current) {
            std::vector<uint8_t> mask(cfg.numCounters, 0);
            mask[op.counter] = 1;
            eng.setMask(h, mask);
            current = op.counter;
        }
        if (op.value >= 0)
            eng.accumulate(static_cast<uint64_t>(op.value), h,
                           op.group);
        else
            eng.accumulateSigned(op.value, h, op.group);
    }
    return eng.readCounters(group);
}

} // namespace

class ShardedVsSingle : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ShardedVsSingle, UnsignedPointStreamMatches)
{
    const auto cfg = baseConfig(64, GetParam());
    const auto ops = randomOps(300, cfg.numCounters, 7, false);

    ShardedEngine sharded(cfg, 4);
    sharded.accumulateBatch(ops);
    EXPECT_EQ(sharded.readAllCounters(), runSingle(cfg, ops));
    EXPECT_EQ(sharded.stats().inputsAccumulated, ops.size());
}

TEST_P(ShardedVsSingle, SignedPointStreamMatches)
{
    const auto cfg = baseConfig(48, GetParam());
    const auto ops = randomOps(200, cfg.numCounters, 11, true);

    ShardedEngine sharded(cfg, 4);
    sharded.accumulateBatch(ops);
    EXPECT_EQ(sharded.readAllCounters(), runSingle(cfg, ops));
}

INSTANTIATE_TEST_SUITE_P(Radices, ShardedVsSingle,
                         ::testing::Values(4u, 10u));

TEST(Sharded, EccConfigMatchesFaultFree)
{
    auto cfg = baseConfig(32);
    cfg.protection = Protection::Ecc;
    const auto ops = randomOps(120, cfg.numCounters, 3, true);

    ShardedEngine sharded(cfg, 4);
    sharded.accumulateBatch(ops);
    EXPECT_EQ(sharded.readAllCounters(), runSingle(cfg, ops));
    EXPECT_GT(sharded.stats().checksRun, 0u);
    EXPECT_EQ(sharded.stats().faultsDetected, 0u);
}

TEST(Sharded, TmrConfigMatchesFaultFree)
{
    auto cfg = baseConfig(32);
    cfg.protection = Protection::Tmr;
    const auto ops = randomOps(100, cfg.numCounters, 5, false);

    ShardedEngine sharded(cfg, 4);
    sharded.accumulateBatch(ops);
    EXPECT_EQ(sharded.readAllCounters(), runSingle(cfg, ops));
    EXPECT_GT(sharded.stats().voteOps, 0u);
}

TEST(Sharded, UnevenSplitCoversEveryCounter)
{
    const auto cfg = baseConfig(67);
    ShardedEngine sharded(cfg, 4);
    size_t total = 0;
    for (unsigned s = 0; s < sharded.numShards(); ++s)
        total += sharded.shardWidth(s);
    EXPECT_EQ(total, cfg.numCounters);
    for (uint64_t c = 0; c < cfg.numCounters; ++c) {
        const unsigned s = sharded.shardOf(c);
        EXPECT_GE(c, sharded.shardStart(s));
        EXPECT_LT(c, sharded.shardStart(s) + sharded.shardWidth(s));
    }

    const auto ops = randomOps(150, cfg.numCounters, 13, true);
    ShardedEngine run(cfg, 4);
    run.accumulateBatch(ops);
    EXPECT_EQ(run.readAllCounters(), runSingle(cfg, ops));
}

TEST(Sharded, DeterministicAcrossThreadCounts)
{
    const auto cfg = baseConfig(64);
    const auto ops = randomOps(250, cfg.numCounters, 17, true);

    std::vector<int64_t> reference;
    EngineStats ref_stats;
    for (unsigned threads : {1u, 2u, 4u}) {
        ShardedEngine eng(cfg, 4, threads);
        eng.accumulateBatch(ops);
        const auto counters = eng.readAllCounters();
        const auto st = eng.stats();
        if (reference.empty()) {
            reference = counters;
            ref_stats = st;
            continue;
        }
        EXPECT_EQ(counters, reference) << "threads=" << threads;
        EXPECT_EQ(st.increments, ref_stats.increments);
        EXPECT_EQ(st.ripples, ref_stats.ripples);
        EXPECT_EQ(st.inputsAccumulated, ref_stats.inputsAccumulated);
    }
}

TEST(Sharded, BroadcastMaskedAccumulateMatches)
{
    const auto cfg = baseConfig(64);
    Rng rng(23);

    C2MEngine single(cfg);
    ShardedEngine sharded(cfg, 4);
    std::vector<unsigned> hs, hd;
    for (int m = 0; m < 3; ++m) {
        std::vector<uint8_t> mask(cfg.numCounters);
        for (auto &b : mask)
            b = rng.nextBool(0.5);
        hs.push_back(single.addMask(mask));
        hd.push_back(sharded.addMask(mask));
    }

    for (int step = 0; step < 40; ++step) {
        const uint64_t v = rng.nextBounded(100);
        const unsigned m = static_cast<unsigned>(rng.nextBounded(3));
        single.accumulate(v, hs[m]);
        sharded.accumulate(v, hd[m]);
    }
    EXPECT_EQ(sharded.readAllCounters(), single.readCounters());

    // Overwriting a sliced mask keeps the engines in lockstep.
    std::vector<uint8_t> updated(cfg.numCounters, 1);
    single.setMask(hs[0], updated);
    sharded.setMask(hd[0], updated);
    single.accumulate(9, hs[0]);
    sharded.accumulate(9, hd[0]);
    EXPECT_EQ(sharded.readAllCounters(), single.readCounters());
}

TEST(Sharded, TensorOpFanOutMatchesSingleEngine)
{
    auto cfg = baseConfig(32);
    cfg.numGroups = 2;
    Rng rng(31);

    C2MEngine single(cfg);
    ShardedEngine sharded(cfg, 4);
    std::vector<uint8_t> mask(cfg.numCounters, 1);
    const unsigned hs = single.addMask(mask);
    const unsigned hd = sharded.addMask(mask);

    for (int step = 0; step < 10; ++step) {
        const uint64_t v = 1 + rng.nextBounded(30);
        single.accumulate(v, hs, 0);
        sharded.accumulate(v, hd, 0);
        single.accumulate(v / 2, hs, 1);
        sharded.accumulate(v / 2, hd, 1);
    }
    single.drain(0);
    sharded.drain(0);
    single.addCounters(0, 1);
    sharded.addCounters(0, 1);
    EXPECT_EQ(sharded.readAllCounters(0), single.readCounters(0));

    // Drive group 1 negative, then relu both.
    single.accumulateSigned(-1000, hs, 1);
    sharded.accumulateSigned(-1000, hd, 1);
    single.relu(1);
    sharded.relu(1);
    const auto counters = sharded.readAllCounters(1);
    EXPECT_EQ(counters, single.readCounters(1));
    for (int64_t c : counters)
        EXPECT_GE(c, 0);

    single.clear();
    sharded.clear();
    EXPECT_EQ(sharded.readAllCounters(0), single.readCounters(0));
}

TEST(Sharded, MergedStatsAggregateFaultCounters)
{
    auto cfg = baseConfig(64);
    cfg.protection = Protection::Ecc;
    cfg.faultRate = 2e-4;
    const auto ops = randomOps(200, cfg.numCounters, 41, false);

    ShardedEngine sharded(cfg, 4);
    sharded.accumulateBatch(ops);
    const auto merged = sharded.stats();
    EXPECT_EQ(merged.inputsAccumulated, ops.size());
    EXPECT_GT(merged.checksRun, 0u);

    // The merge equals the field-wise sum over the shards.
    EngineStats manual;
    for (unsigned s = 0; s < sharded.numShards(); ++s)
        manual += sharded.shard(s).stats();
    EXPECT_EQ(merged.checksRun, manual.checksRun);
    EXPECT_EQ(merged.faultsDetected, manual.faultsDetected);
    EXPECT_EQ(merged.retries, manual.retries);
}

TEST(EngineStatsMerge, SumsEveryField)
{
    // A new EngineStats field changes this size and fails here:
    // extend operator+= and the checks below together.
    static_assert(sizeof(EngineStats) == 36 * sizeof(uint64_t),
                  "EngineStats changed; update operator+= and this "
                  "test");

    // fabricNs must equal sum(attrNs) (the ledger invariant), so the
    // fixtures put their whole 24.0/240.0 into the plan row.
    EngineStats a{1,  2,  3,  4,  5,  6,  7,  8,
                  9,  10, 11, 12, 13, 14, 15, 16,
                  {17, 18, 19, 20, 21, 22, 23, 24.0, 25.0, {24.0}},
                  26.0};
    const EngineStats b{10,  20,  30,  40,  50,  60,  70,  80,
                        90,  100, 110, 120, 130, 140, 150, 160,
                        {170, 180, 190, 200, 210, 220, 230, 240.0,
                         250.0, {240.0}},
                        260.0};
    a += b;
    EXPECT_EQ(a.inputsAccumulated, 11u);
    EXPECT_EQ(a.increments, 22u);
    EXPECT_EQ(a.ripples, 33u);
    EXPECT_EQ(a.checksRun, 44u);
    EXPECT_EQ(a.faultsDetected, 55u);
    EXPECT_EQ(a.retries, 66u);
    EXPECT_EQ(a.uncorrectedBlocks, 77u);
    EXPECT_EQ(a.invalidStates, 88u);
    EXPECT_EQ(a.voteOps, 99u);
    EXPECT_EQ(a.programCacheHits, 110u);
    EXPECT_EQ(a.programCacheMisses, 121u);
    EXPECT_EQ(a.plansExecuted, 132u);
    EXPECT_EQ(a.planPrograms, 143u);
    EXPECT_EQ(a.planLeadPrograms, 154u);
    EXPECT_EQ(a.plannedOps, 165u);
    EXPECT_EQ(a.planFallbackOps, 176u);
    EXPECT_EQ(a.fabric.aap, 187u);
    EXPECT_EQ(a.fabric.ap, 198u);
    EXPECT_EQ(a.fabric.tra, 209u);
    EXPECT_EQ(a.fabric.faultsInjected, 220u);
    EXPECT_EQ(a.fabric.rowReads, 231u);
    EXPECT_EQ(a.fabric.rowWrites, 242u);
    EXPECT_EQ(a.fabric.gangedCommands, 253u);
    EXPECT_DOUBLE_EQ(a.fabric.fabricNs, 264.0);
    EXPECT_DOUBLE_EQ(a.fabric.fabricNj, 275.0);
    EXPECT_DOUBLE_EQ(a.fabric.attr(cim::FabricCat::Plan), 264.0);
    // Bit-exact ledger invariant survives the merge.
    double ledger = 0.0;
    for (double row : a.fabric.attrNs)
        ledger += row;
    EXPECT_EQ(ledger, a.fabric.fabricNs);
    // Critical path is a max over parallel contributors, not a sum.
    EXPECT_DOUBLE_EQ(a.fabricCriticalNs, 260.0);
}

// ---------------------------------------------------------------------
// Digit-plane drain planner
// ---------------------------------------------------------------------

namespace {

/** Positive-delta stream (plans engage; no signed fallback). */
std::vector<BatchOp>
positiveOps(size_t n, size_t counters, uint64_t seed,
            unsigned groups = 1)
{
    Rng rng(seed);
    std::vector<BatchOp> ops;
    ops.reserve(n);
    for (size_t i = 0; i < n; ++i)
        ops.push_back({rng.nextBounded(counters),
                       static_cast<int64_t>(1 + rng.nextBounded(50)),
                       static_cast<uint32_t>(rng.nextBounded(groups))});
    return ops;
}

/** Zipf(1.0)-skewed keys: the coalesced-bucket shape epochs see. */
std::vector<BatchOp>
zipfOps(size_t n, size_t counters, uint64_t seed)
{
    ZipfRng keys(counters, 1.0, seed);
    Rng val(seed ^ 0x5bf0);
    std::vector<BatchOp> ops;
    ops.reserve(n);
    for (size_t i = 0; i < n; ++i)
        ops.push_back({keys.next(),
                       static_cast<int64_t>(1 + val.nextBounded(7)),
                       0});
    return ops;
}

/** Adversarial: every counter hit once, every delta distinct. */
std::vector<BatchOp>
distinctDeltaOps(size_t counters)
{
    std::vector<BatchOp> ops;
    ops.reserve(counters);
    for (size_t c = 0; c < counters; ++c)
        ops.push_back({c, static_cast<int64_t>(c + 1), 0});
    return ops;
}

/** Run @p ops as one sharded batch with the planner on/off. */
std::pair<std::vector<int64_t>, EngineStats>
runPlanned(EngineConfig cfg, const std::vector<BatchOp> &ops,
           bool planner, unsigned shards = 4)
{
    cfg.drainPlanner = planner;
    ShardedEngine eng(cfg, shards);
    eng.accumulateBatch(ops);
    return {eng.readAllCounters(), eng.stats()};
}

} // namespace

TEST(DrainPlanner, UniformStreamMatchesSerialReplay)
{
    const auto cfg = baseConfig(96);
    const auto ops = positiveOps(600, cfg.numCounters, 3);
    const auto ref = core::replaySerial(cfg, ops);

    const auto [on, stats_on] = runPlanned(cfg, ops, true);
    const auto [off, stats_off] = runPlanned(cfg, ops, false);
    EXPECT_EQ(on, ref);
    EXPECT_EQ(off, ref);
    EXPECT_GT(stats_on.plansExecuted, 0u);
    EXPECT_GT(stats_on.planPrograms, 0u);
    EXPECT_EQ(stats_on.plannedOps + stats_on.planFallbackOps,
              ops.size());
    // The column-parallel win: far fewer fabric programs.
    EXPECT_LT(stats_on.increments, stats_off.increments / 4);
    EXPECT_EQ(stats_off.plansExecuted, 0u);
    EXPECT_EQ(stats_on.inputsAccumulated, ops.size());
}

TEST(DrainPlanner, ZipfStreamMatchesSerialReplay)
{
    const auto cfg = baseConfig(256);
    const auto ops = zipfOps(2000, cfg.numCounters, 21);
    const auto ref = core::replaySerial(cfg, ops);

    const auto [on, stats_on] = runPlanned(cfg, ops, true);
    EXPECT_EQ(on, ref);
    EXPECT_GT(stats_on.plansExecuted, 0u);
}

TEST(DrainPlanner, AdversarialDistinctDeltasMatch)
{
    // All-distinct deltas populate the most planes per plan — the
    // worst case for plane sharing; correctness must hold whether
    // the cost heuristic plans or falls back.
    const auto cfg = baseConfig(128);
    const auto ops = distinctDeltaOps(cfg.numCounters);
    const auto ref = core::replaySerial(cfg, ops);

    const auto [on, stats_on] = runPlanned(cfg, ops, true);
    EXPECT_EQ(on, ref);
    EXPECT_EQ(stats_on.plannedOps + stats_on.planFallbackOps,
              ops.size());
}

TEST(DrainPlanner, PlanProgramsBoundedByDigitPlanes)
{
    const auto cfg = baseConfig(256);
    const auto ops = positiveOps(1500, cfg.numCounters, 9);

    EngineConfig pcfg = cfg;
    pcfg.drainPlanner = true;
    ShardedEngine eng(pcfg, 4);
    eng.accumulateBatch(ops);
    const auto st = eng.stats();
    // One batch = at most one plan per (shard, group); each plan
    // issues at most D*(R-1) plane programs.
    const unsigned D = eng.shard(0).backend().numDigits();
    const uint64_t bound = static_cast<uint64_t>(D) *
                           (cfg.radix - 1) * eng.numShards();
    EXPECT_LE(st.planPrograms, bound);
    EXPECT_LE(st.plansExecuted, eng.numShards());
    EXPECT_EQ(eng.readAllCounters(), core::replaySerial(cfg, ops));
}

TEST(DrainPlanner, GuardDigitSumsFallBackInsteadOfPanicking)
{
    // 70000 unit hits on one counter: each raw op is in range, but
    // the summed delta's top digit would land in the guard digit the
    // planner cannot address — the bucket must fall back per-op (the
    // path that grows the counter via ripples), not abort.
    auto cfg = baseConfig(8);
    cfg.capacityBits = 16; // D = 9 digits at radix 4
    std::vector<BatchOp> ops(70000, BatchOp{0, 1, 0});
    ops.push_back({1, 3, 0});

    EngineConfig pcfg = cfg;
    pcfg.drainPlanner = true;
    ShardedEngine eng(pcfg, 1);
    eng.accumulateBatch(ops);
    const auto counters = eng.readAllCounters();
    EXPECT_EQ(counters[0], 70000);
    EXPECT_EQ(counters[1], 3);
    EXPECT_GT(eng.stats().planFallbackOps, 0u);
}

TEST(DrainPlanner, HotKeyDuplicatesPlanAgainstRawOpCost)
{
    // An uncoalesced hot-key bucket: the sums collapse to few
    // counters, so the plan must be costed against the RAW per-op
    // replay it replaces (~N programs), not against the sums —
    // otherwise 2000 unit hits would fall back to 2000 program
    // chains where a handful of planes suffice.
    const auto cfg = baseConfig(32);
    std::vector<BatchOp> ops(2000, BatchOp{4, 1, 0});
    const auto ref = core::replaySerial(cfg, ops);

    const auto [on, stats_on] = runPlanned(cfg, ops, true, 1);
    EXPECT_EQ(on, ref);
    EXPECT_EQ(stats_on.planFallbackOps, 0u);
    EXPECT_GT(stats_on.plansExecuted, 0u);
    EXPECT_LT(stats_on.increments, 20u);
}

TEST(DrainPlanner, SignedBucketsFallBackPerOp)
{
    const auto cfg = baseConfig(64);
    const auto ops = randomOps(400, cfg.numCounters, 19, true);
    const auto ref = runSingle(cfg, ops);

    const auto [on, stats_on] = runPlanned(cfg, ops, true);
    EXPECT_EQ(on, ref);
    EXPECT_GT(stats_on.planFallbackOps, 0u);
}

TEST(DrainPlanner, SignedModeGroupNeverPlans)
{
    // Once a group saw a decrement, every later bucket must take the
    // per-op path (pending flags stay fully resolved in signed mode).
    const auto cfg = baseConfig(32);
    EngineConfig pcfg = cfg;
    pcfg.drainPlanner = true;
    ShardedEngine eng(pcfg, 1);
    std::vector<BatchOp> neg{{3, -5, 0}};
    eng.accumulateBatch(neg);
    const auto pos = positiveOps(100, cfg.numCounters, 31);
    eng.accumulateBatch(pos);

    const auto st = eng.stats();
    EXPECT_EQ(st.plansExecuted, 0u);
    EXPECT_EQ(st.planFallbackOps, 1 + pos.size());

    std::vector<BatchOp> all = neg;
    all.insert(all.end(), pos.begin(), pos.end());
    EXPECT_EQ(eng.readAllCounters(), runSingle(cfg, all));
}

TEST(DrainPlanner, MultiGroupBucketsPlanIndependently)
{
    auto cfg = baseConfig(64);
    cfg.numGroups = 3;
    const auto ops = positiveOps(900, cfg.numCounters, 41, 3);

    EngineConfig pcfg = cfg;
    pcfg.drainPlanner = true;
    ShardedEngine eng(pcfg, 2);
    eng.accumulateBatch(ops);
    EXPECT_GT(eng.stats().plansExecuted, 0u);
    for (unsigned g = 0; g < 3; ++g)
        EXPECT_EQ(eng.readAllCounters(g),
                  core::replaySerial(cfg, ops, g))
            << "group " << g;
}

class PlannerBackends
    : public ::testing::TestWithParam<core::BackendKind>
{
};

TEST_P(PlannerBackends, PlannedBatchMatchesSerialReplay)
{
    auto cfg = baseConfig(64);
    cfg.backend = GetParam();
    cfg.capacityBits = 16;
    const auto ops = zipfOps(1200, cfg.numCounters, 61);
    const auto ref = core::replaySerial(cfg, ops);

    const auto [on, stats_on] = runPlanned(cfg, ops, true);
    const auto [off, stats_off] = runPlanned(cfg, ops, false);
    EXPECT_EQ(on, ref);
    EXPECT_EQ(off, ref);
    EXPECT_GT(stats_on.plansExecuted, 0u);
    EXPECT_LT(stats_on.increments, stats_off.increments);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, PlannerBackends,
    ::testing::Values(core::BackendKind::Ambit,
                      core::BackendKind::NvmPinatubo,
                      core::BackendKind::NvmMagic,
                      core::BackendKind::Rca),
    [](const ::testing::TestParamInfo<core::BackendKind> &info) {
        switch (info.param) {
          case core::BackendKind::Ambit:
            return "ambit";
          case core::BackendKind::NvmPinatubo:
            return "nvm_pinatubo";
          case core::BackendKind::NvmMagic:
            return "nvm_magic";
          default:
            return "rca";
        }
    });

// ---------------------------------------------------------------------
// Hierarchical epoch pipeline (runEpoch): merged plans + gang issue
// ---------------------------------------------------------------------

namespace {

/** Route @p ops into per-shard epoch buckets and drain them through
    the hierarchical pipeline in one runEpoch call. */
void
drainEpoch(ShardedEngine &eng, const std::vector<BatchOp> &ops,
           bool stealing = true)
{
    std::vector<std::vector<BatchOp>> buckets(eng.numShards());
    for (const auto &op : ops)
        buckets[eng.shardOf(op.counter)].push_back(op);
    std::vector<ShardedEngine::EpochBucket> eb;
    for (unsigned s = 0; s < eng.numShards(); ++s)
        if (!buckets[s].empty())
            eb.push_back({s, buckets[s]});
    eng.runEpoch(eb, stealing);
}

/** Gang-issue ledger invariants every drained engine must satisfy. */
void
expectGangInvariants(const EngineStats &st, unsigned shards)
{
    // Followers are a subset of plan programs, ganged commands a
    // subset of all commands, and the attribution ledger stays
    // bit-exact with the PlanFanout row included.
    EXPECT_LE(st.planLeadPrograms, st.planPrograms);
    EXPECT_LE(st.fabric.gangedCommands, st.fabric.commands());
    double ledger = 0.0;
    for (double row : st.fabric.attrNs)
        ledger += row;
    EXPECT_EQ(ledger, st.fabric.fabricNs);
    if (shards == 1) {
        // Single-shard plans are all-lead: nothing to gang.
        EXPECT_EQ(st.planLeadPrograms, st.planPrograms);
        EXPECT_EQ(st.fabric.gangedCommands, 0u);
        EXPECT_DOUBLE_EQ(
            st.fabric.attr(cim::FabricCat::PlanFanout), 0.0);
    }
}

} // namespace

class EpochPipeline
    : public ::testing::TestWithParam<
          std::tuple<core::BackendKind, unsigned>>
{
};

TEST_P(EpochPipeline, UnsignedEpochMatchesSerialReplay)
{
    const auto [backend, shards] = GetParam();
    auto cfg = baseConfig(96);
    cfg.backend = backend;
    cfg.capacityBits = 16;
    const auto ops = positiveOps(800, cfg.numCounters, 77);
    const auto ref = core::replaySerial(cfg, ops);

    EngineConfig pcfg = cfg;
    pcfg.drainPlanner = true;
    ShardedEngine eng(pcfg, shards);
    drainEpoch(eng, ops);
    EXPECT_EQ(eng.readAllCounters(), ref);

    const auto st = eng.stats();
    EXPECT_EQ(st.plannedOps + st.planFallbackOps, ops.size());
    expectGangInvariants(st, shards);
    if (shards > 1 && st.plansExecuted >= shards) {
        // A dense uniform stream touches the same (digit, k) planes
        // on every shard, so the merged plan must actually gang:
        // followers exist and are charged in their own ledger row.
        EXPECT_LT(st.planLeadPrograms, st.planPrograms);
        EXPECT_GT(st.fabric.gangedCommands, 0u);
        EXPECT_GT(st.fabric.attr(cim::FabricCat::PlanFanout), 0.0);
    }
}

TEST_P(EpochPipeline, SignedEpochFallsBackAndMatches)
{
    const auto [backend, shards] = GetParam();
    auto cfg = baseConfig(64);
    cfg.backend = backend;
    cfg.capacityBits = 16;
    const auto ops = randomOps(300, cfg.numCounters, 83, true);
    const auto ref = runSingle(cfg, ops);

    EngineConfig pcfg = cfg;
    pcfg.drainPlanner = true;
    ShardedEngine eng(pcfg, shards);
    drainEpoch(eng, ops);
    EXPECT_EQ(eng.readAllCounters(), ref);

    const auto st = eng.stats();
    EXPECT_GT(st.planFallbackOps, 0u);
    expectGangInvariants(st, shards);
    // Serial replay is never ganged: fallback ns stays per shard.
    EXPECT_GT(st.fabric.attr(cim::FabricCat::Fallback), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    BackendsByShards, EpochPipeline,
    ::testing::Combine(
        ::testing::Values(core::BackendKind::Ambit,
                          core::BackendKind::NvmPinatubo,
                          core::BackendKind::NvmMagic,
                          core::BackendKind::Rca),
        ::testing::Values(1u, 2u, 4u, 8u)),
    [](const ::testing::TestParamInfo<
        std::tuple<core::BackendKind, unsigned>> &info) {
        std::string name;
        switch (std::get<0>(info.param)) {
          case core::BackendKind::Ambit:
            name = "ambit";
            break;
          case core::BackendKind::NvmPinatubo:
            name = "nvm_pinatubo";
            break;
          case core::BackendKind::NvmMagic:
            name = "nvm_magic";
            break;
          default:
            name = "rca";
            break;
        }
        return name + "_x" + std::to_string(std::get<1>(info.param));
    });

TEST(EpochPipeline, RepeatedEpochsReuseScratchAndStayExact)
{
    // Three epochs of different shapes through one engine: the
    // per-part scratch (planes, tables, step lists) is reused across
    // runEpoch calls and must never leak state between epochs.
    auto cfg = baseConfig(128);
    cfg.capacityBits = 16;
    EngineConfig pcfg = cfg;
    pcfg.drainPlanner = true;
    ShardedEngine eng(pcfg, 4);

    const auto e1 = positiveOps(500, cfg.numCounters, 5);
    const auto e2 = zipfOps(700, cfg.numCounters, 6);
    const auto e3 = distinctDeltaOps(cfg.numCounters);
    drainEpoch(eng, e1);
    drainEpoch(eng, e2, /*stealing=*/false);
    drainEpoch(eng, e3);

    std::vector<BatchOp> all = e1;
    all.insert(all.end(), e2.begin(), e2.end());
    all.insert(all.end(), e3.begin(), e3.end());
    EXPECT_EQ(eng.readAllCounters(), core::replaySerial(cfg, all));
    expectGangInvariants(eng.stats(), 4);
}

TEST(EpochPipeline, MultiGroupEpochMergesPerGroup)
{
    // Groups plan independently even inside one merged epoch: each
    // group gets its own global plan, sliced across the shards that
    // hold its ops.
    auto cfg = baseConfig(64);
    cfg.numGroups = 3;
    const auto ops = positiveOps(900, cfg.numCounters, 47, 3);

    EngineConfig pcfg = cfg;
    pcfg.drainPlanner = true;
    ShardedEngine eng(pcfg, 4);
    drainEpoch(eng, ops);
    for (unsigned g = 0; g < 3; ++g)
        EXPECT_EQ(eng.readAllCounters(g),
                  core::replaySerial(cfg, ops, g))
            << "group " << g;
    expectGangInvariants(eng.stats(), 4);
}

TEST(EpochPipeline, MergedPlanAttributionSublinearInShards)
{
    // The tentpole claim: one gang-issued global plan instead of N
    // replicated per-shard plans. Lead programs stop scaling with
    // the shard count, so 8-shard plan attribution must stay well
    // under 4x the 1-shard cost for the same stream (it was exactly
    // 8x under replication).
    auto cfg = baseConfig(256);
    cfg.capacityBits = 16;
    cfg.drainPlanner = true;
    const auto ops = positiveOps(4000, cfg.numCounters, 91);

    auto planAttr = [&](unsigned shards) {
        ShardedEngine eng(cfg, shards);
        drainEpoch(eng, ops);
        EXPECT_GT(eng.stats().plansExecuted, 0u);
        return eng.stats().fabric.attr(cim::FabricCat::Plan);
    };
    const double one = planAttr(1);
    const double eight = planAttr(8);
    EXPECT_GT(one, 0.0);
    EXPECT_LT(eight, 4.0 * one);
}

TEST(DrainPlanner, ProtectedConfigsStayExact)
{
    for (const auto prot : {Protection::Ecc, Protection::Tmr}) {
        auto cfg = baseConfig(48);
        cfg.protection = prot;
        const auto ops = positiveOps(300, cfg.numCounters, 51);
        const auto ref = core::replaySerial(cfg, ops);
        const auto [on, stats_on] = runPlanned(cfg, ops, true);
        EXPECT_EQ(on, ref);
        EXPECT_GT(stats_on.plansExecuted, 0u);
        if (prot == Protection::Ecc)
            EXPECT_GT(stats_on.checksRun, 0u);
        else
            EXPECT_GT(stats_on.voteOps, 0u);
    }
}

TEST(ShardedWorkloads, DnaBatchedHistogramMatchesHost)
{
    workloads::DnaConfig dcfg;
    dcfg.genomeLen = 4096;
    dcfg.binSize = 256;
    dcfg.numReads = 8;
    workloads::DnaWorkload dna(dcfg);

    auto ecfg = baseConfig(128);
    ecfg.capacityBits = 24;
    ecfg.maxMaskRows = 1;
    ShardedEngine eng(ecfg, 4);

    const auto host = dna.repetitionHistogram();
    const auto batched = dna.repetitionHistogram(eng);
    EXPECT_EQ(batched.total(), host.total());
    EXPECT_EQ(batched.overflow(), host.overflow());
    EXPECT_EQ(batched.underflow(), host.underflow());
    for (int64_t v = 0; v <= 18; ++v)
        EXPECT_EQ(batched.binCount(v), host.binCount(v))
            << "bin " << v;
}

TEST(ShardedWorkloads, SparsityValueHistogramMatchesHost)
{
    const unsigned bits = 5; // values in [1, 32)
    const auto values =
        workloads::sparseUnsignedVector(600, bits, 0.4, 77);

    auto ecfg = baseConfig(32);
    ecfg.capacityBits = 16;
    ecfg.maxMaskRows = 1;
    ShardedEngine eng(ecfg, 4);
    const auto h = workloads::valueHistogram(values, eng);

    std::vector<uint64_t> expected(32, 0);
    for (uint64_t v : values)
        ++expected[v];
    EXPECT_EQ(h.total(), values.size());
    for (int64_t v = 0; v < 32; ++v)
        EXPECT_EQ(h.binCount(v), expected[static_cast<size_t>(v)])
            << "value " << v;

    const auto signedv =
        workloads::sparseSignedVector(400, bits, 0.3, 78);
    ShardedEngine eng2(ecfg, 4);
    const auto hm = workloads::magnitudeHistogram(signedv, eng2);
    std::vector<uint64_t> mexp(32, 0);
    for (int64_t v : signedv)
        ++mexp[static_cast<size_t>(v < 0 ? -v : v)];
    for (int64_t v = 0; v < 32; ++v)
        EXPECT_EQ(hm.binCount(v), mexp[static_cast<size_t>(v)]);
}
