/**
 * @file
 * Sharded batch engine tests: shard-vs-single-engine equivalence on
 * random point-update streams (unsigned, signed, ECC, TMR), sliced
 * broadcast masks, tensor-op fan-out, determinism across thread
 * counts, stats merging, and the batched workload histograms.
 */

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.hpp"
#include "core/sharded.hpp"
#include "workloads/dna.hpp"
#include "workloads/sparsity.hpp"

using namespace c2m;
using core::BatchOp;
using core::C2MEngine;
using core::EngineConfig;
using core::EngineStats;
using core::Protection;
using core::ShardedEngine;

namespace {

EngineConfig
baseConfig(size_t counters = 64, unsigned radix = 4)
{
    EngineConfig cfg;
    cfg.radix = radix;
    cfg.capacityBits = 20;
    cfg.numCounters = counters;
    cfg.maxMaskRows = 8;
    return cfg;
}

std::vector<BatchOp>
randomOps(size_t n, size_t counters, uint64_t seed,
          bool with_negatives)
{
    Rng rng(seed);
    std::vector<BatchOp> ops;
    ops.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        BatchOp op;
        op.counter = rng.nextBounded(counters);
        op.value = static_cast<int64_t>(rng.nextBounded(60));
        if (with_negatives && rng.nextBool(0.4))
            op.value = -op.value;
        op.group = 0;
        ops.push_back(op);
    }
    return ops;
}

/** Reference: the same op stream on one engine over the full space. */
std::vector<int64_t>
runSingle(const EngineConfig &cfg, const std::vector<BatchOp> &ops,
          unsigned group = 0)
{
    C2MEngine eng(cfg);
    const unsigned h =
        eng.addMask(std::vector<uint8_t>(cfg.numCounters, 0));
    size_t current = std::numeric_limits<size_t>::max();
    for (const auto &op : ops) {
        if (op.counter != current) {
            std::vector<uint8_t> mask(cfg.numCounters, 0);
            mask[op.counter] = 1;
            eng.setMask(h, mask);
            current = op.counter;
        }
        if (op.value >= 0)
            eng.accumulate(static_cast<uint64_t>(op.value), h,
                           op.group);
        else
            eng.accumulateSigned(op.value, h, op.group);
    }
    return eng.readCounters(group);
}

} // namespace

class ShardedVsSingle : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ShardedVsSingle, UnsignedPointStreamMatches)
{
    const auto cfg = baseConfig(64, GetParam());
    const auto ops = randomOps(300, cfg.numCounters, 7, false);

    ShardedEngine sharded(cfg, 4);
    sharded.accumulateBatch(ops);
    EXPECT_EQ(sharded.readAllCounters(), runSingle(cfg, ops));
    EXPECT_EQ(sharded.stats().inputsAccumulated, ops.size());
}

TEST_P(ShardedVsSingle, SignedPointStreamMatches)
{
    const auto cfg = baseConfig(48, GetParam());
    const auto ops = randomOps(200, cfg.numCounters, 11, true);

    ShardedEngine sharded(cfg, 4);
    sharded.accumulateBatch(ops);
    EXPECT_EQ(sharded.readAllCounters(), runSingle(cfg, ops));
}

INSTANTIATE_TEST_SUITE_P(Radices, ShardedVsSingle,
                         ::testing::Values(4u, 10u));

TEST(Sharded, EccConfigMatchesFaultFree)
{
    auto cfg = baseConfig(32);
    cfg.protection = Protection::Ecc;
    const auto ops = randomOps(120, cfg.numCounters, 3, true);

    ShardedEngine sharded(cfg, 4);
    sharded.accumulateBatch(ops);
    EXPECT_EQ(sharded.readAllCounters(), runSingle(cfg, ops));
    EXPECT_GT(sharded.stats().checksRun, 0u);
    EXPECT_EQ(sharded.stats().faultsDetected, 0u);
}

TEST(Sharded, TmrConfigMatchesFaultFree)
{
    auto cfg = baseConfig(32);
    cfg.protection = Protection::Tmr;
    const auto ops = randomOps(100, cfg.numCounters, 5, false);

    ShardedEngine sharded(cfg, 4);
    sharded.accumulateBatch(ops);
    EXPECT_EQ(sharded.readAllCounters(), runSingle(cfg, ops));
    EXPECT_GT(sharded.stats().voteOps, 0u);
}

TEST(Sharded, UnevenSplitCoversEveryCounter)
{
    const auto cfg = baseConfig(67);
    ShardedEngine sharded(cfg, 4);
    size_t total = 0;
    for (unsigned s = 0; s < sharded.numShards(); ++s)
        total += sharded.shardWidth(s);
    EXPECT_EQ(total, cfg.numCounters);
    for (uint64_t c = 0; c < cfg.numCounters; ++c) {
        const unsigned s = sharded.shardOf(c);
        EXPECT_GE(c, sharded.shardStart(s));
        EXPECT_LT(c, sharded.shardStart(s) + sharded.shardWidth(s));
    }

    const auto ops = randomOps(150, cfg.numCounters, 13, true);
    ShardedEngine run(cfg, 4);
    run.accumulateBatch(ops);
    EXPECT_EQ(run.readAllCounters(), runSingle(cfg, ops));
}

TEST(Sharded, DeterministicAcrossThreadCounts)
{
    const auto cfg = baseConfig(64);
    const auto ops = randomOps(250, cfg.numCounters, 17, true);

    std::vector<int64_t> reference;
    EngineStats ref_stats;
    for (unsigned threads : {1u, 2u, 4u}) {
        ShardedEngine eng(cfg, 4, threads);
        eng.accumulateBatch(ops);
        const auto counters = eng.readAllCounters();
        const auto st = eng.stats();
        if (reference.empty()) {
            reference = counters;
            ref_stats = st;
            continue;
        }
        EXPECT_EQ(counters, reference) << "threads=" << threads;
        EXPECT_EQ(st.increments, ref_stats.increments);
        EXPECT_EQ(st.ripples, ref_stats.ripples);
        EXPECT_EQ(st.inputsAccumulated, ref_stats.inputsAccumulated);
    }
}

TEST(Sharded, BroadcastMaskedAccumulateMatches)
{
    const auto cfg = baseConfig(64);
    Rng rng(23);

    C2MEngine single(cfg);
    ShardedEngine sharded(cfg, 4);
    std::vector<unsigned> hs, hd;
    for (int m = 0; m < 3; ++m) {
        std::vector<uint8_t> mask(cfg.numCounters);
        for (auto &b : mask)
            b = rng.nextBool(0.5);
        hs.push_back(single.addMask(mask));
        hd.push_back(sharded.addMask(mask));
    }

    for (int step = 0; step < 40; ++step) {
        const uint64_t v = rng.nextBounded(100);
        const unsigned m = static_cast<unsigned>(rng.nextBounded(3));
        single.accumulate(v, hs[m]);
        sharded.accumulate(v, hd[m]);
    }
    EXPECT_EQ(sharded.readAllCounters(), single.readCounters());

    // Overwriting a sliced mask keeps the engines in lockstep.
    std::vector<uint8_t> updated(cfg.numCounters, 1);
    single.setMask(hs[0], updated);
    sharded.setMask(hd[0], updated);
    single.accumulate(9, hs[0]);
    sharded.accumulate(9, hd[0]);
    EXPECT_EQ(sharded.readAllCounters(), single.readCounters());
}

TEST(Sharded, TensorOpFanOutMatchesSingleEngine)
{
    auto cfg = baseConfig(32);
    cfg.numGroups = 2;
    Rng rng(31);

    C2MEngine single(cfg);
    ShardedEngine sharded(cfg, 4);
    std::vector<uint8_t> mask(cfg.numCounters, 1);
    const unsigned hs = single.addMask(mask);
    const unsigned hd = sharded.addMask(mask);

    for (int step = 0; step < 10; ++step) {
        const uint64_t v = 1 + rng.nextBounded(30);
        single.accumulate(v, hs, 0);
        sharded.accumulate(v, hd, 0);
        single.accumulate(v / 2, hs, 1);
        sharded.accumulate(v / 2, hd, 1);
    }
    single.drain(0);
    sharded.drain(0);
    single.addCounters(0, 1);
    sharded.addCounters(0, 1);
    EXPECT_EQ(sharded.readAllCounters(0), single.readCounters(0));

    // Drive group 1 negative, then relu both.
    single.accumulateSigned(-1000, hs, 1);
    sharded.accumulateSigned(-1000, hd, 1);
    single.relu(1);
    sharded.relu(1);
    const auto counters = sharded.readAllCounters(1);
    EXPECT_EQ(counters, single.readCounters(1));
    for (int64_t c : counters)
        EXPECT_GE(c, 0);

    single.clear();
    sharded.clear();
    EXPECT_EQ(sharded.readAllCounters(0), single.readCounters(0));
}

TEST(Sharded, MergedStatsAggregateFaultCounters)
{
    auto cfg = baseConfig(64);
    cfg.protection = Protection::Ecc;
    cfg.faultRate = 2e-4;
    const auto ops = randomOps(200, cfg.numCounters, 41, false);

    ShardedEngine sharded(cfg, 4);
    sharded.accumulateBatch(ops);
    const auto merged = sharded.stats();
    EXPECT_EQ(merged.inputsAccumulated, ops.size());
    EXPECT_GT(merged.checksRun, 0u);

    // The merge equals the field-wise sum over the shards.
    EngineStats manual;
    for (unsigned s = 0; s < sharded.numShards(); ++s)
        manual += sharded.shard(s).stats();
    EXPECT_EQ(merged.checksRun, manual.checksRun);
    EXPECT_EQ(merged.faultsDetected, manual.faultsDetected);
    EXPECT_EQ(merged.retries, manual.retries);
}

TEST(EngineStatsMerge, SumsEveryField)
{
    // A new EngineStats field changes this size and fails here:
    // extend operator+= and the checks below together.
    static_assert(sizeof(EngineStats) == 17 * sizeof(uint64_t),
                  "EngineStats changed; update operator+= and this "
                  "test");

    EngineStats a{1, 2,  3,  4,  5,  6,  7,  8,  9,  10, 11,
                  {12, 13, 14, 15, 16, 17}};
    const EngineStats b{10,  20,  30,  40,  50,  60,  70,  80, 90,
                        100, 110, {120, 130, 140, 150, 160, 170}};
    a += b;
    EXPECT_EQ(a.inputsAccumulated, 11u);
    EXPECT_EQ(a.increments, 22u);
    EXPECT_EQ(a.ripples, 33u);
    EXPECT_EQ(a.checksRun, 44u);
    EXPECT_EQ(a.faultsDetected, 55u);
    EXPECT_EQ(a.retries, 66u);
    EXPECT_EQ(a.uncorrectedBlocks, 77u);
    EXPECT_EQ(a.invalidStates, 88u);
    EXPECT_EQ(a.voteOps, 99u);
    EXPECT_EQ(a.programCacheHits, 110u);
    EXPECT_EQ(a.programCacheMisses, 121u);
    EXPECT_EQ(a.fabric.aap, 132u);
    EXPECT_EQ(a.fabric.ap, 143u);
    EXPECT_EQ(a.fabric.tra, 154u);
    EXPECT_EQ(a.fabric.faultsInjected, 165u);
    EXPECT_EQ(a.fabric.rowReads, 176u);
    EXPECT_EQ(a.fabric.rowWrites, 187u);
}

TEST(ShardedWorkloads, DnaBatchedHistogramMatchesHost)
{
    workloads::DnaConfig dcfg;
    dcfg.genomeLen = 4096;
    dcfg.binSize = 256;
    dcfg.numReads = 8;
    workloads::DnaWorkload dna(dcfg);

    auto ecfg = baseConfig(128);
    ecfg.capacityBits = 24;
    ecfg.maxMaskRows = 1;
    ShardedEngine eng(ecfg, 4);

    const auto host = dna.repetitionHistogram();
    const auto batched = dna.repetitionHistogram(eng);
    EXPECT_EQ(batched.total(), host.total());
    EXPECT_EQ(batched.overflow(), host.overflow());
    EXPECT_EQ(batched.underflow(), host.underflow());
    for (int64_t v = 0; v <= 18; ++v)
        EXPECT_EQ(batched.binCount(v), host.binCount(v))
            << "bin " << v;
}

TEST(ShardedWorkloads, SparsityValueHistogramMatchesHost)
{
    const unsigned bits = 5; // values in [1, 32)
    const auto values =
        workloads::sparseUnsignedVector(600, bits, 0.4, 77);

    auto ecfg = baseConfig(32);
    ecfg.capacityBits = 16;
    ecfg.maxMaskRows = 1;
    ShardedEngine eng(ecfg, 4);
    const auto h = workloads::valueHistogram(values, eng);

    std::vector<uint64_t> expected(32, 0);
    for (uint64_t v : values)
        ++expected[v];
    EXPECT_EQ(h.total(), values.size());
    for (int64_t v = 0; v < 32; ++v)
        EXPECT_EQ(h.binCount(v), expected[static_cast<size_t>(v)])
            << "value " << v;

    const auto signedv =
        workloads::sparseSignedVector(400, bits, 0.3, 78);
    ShardedEngine eng2(ecfg, 4);
    const auto hm = workloads::magnitudeHistogram(signedv, eng2);
    std::vector<uint64_t> mexp(32, 0);
    for (int64_t v : signedv)
        ++mexp[static_cast<size_t>(v < 0 ? -v : v)];
    for (int64_t v = 0; v < 32; ++v)
        EXPECT_EQ(hm.binCount(v), mexp[static_cast<size_t>(v)]);
}
