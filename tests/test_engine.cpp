/**
 * @file
 * C2M engine integration tests: masked accumulation against plain
 * arithmetic across radices and scheduling modes, signed
 * accumulation, tensor ops (vector add, ReLU, shift-left), and the
 * protection schemes under injected faults.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/engine.hpp"

using namespace c2m;
using core::C2MEngine;
using core::CountMode;
using core::EngineConfig;
using core::Protection;
using core::RippleMode;

namespace {

EngineConfig
smallConfig(unsigned radix, size_t counters = 16)
{
    EngineConfig cfg;
    cfg.radix = radix;
    cfg.capacityBits = 20;
    cfg.numCounters = counters;
    cfg.maxMaskRows = 8;
    return cfg;
}

} // namespace

class EngineRadix : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(EngineRadix, MaskedAccumulationMatchesArithmetic)
{
    const unsigned radix = GetParam();
    C2MEngine eng(smallConfig(radix));
    Rng rng(radix);

    std::vector<std::vector<uint8_t>> masks;
    std::vector<unsigned> handles;
    for (int m = 0; m < 4; ++m) {
        std::vector<uint8_t> mask(16);
        for (auto &b : mask)
            b = rng.nextBool(0.5);
        masks.push_back(mask);
        handles.push_back(eng.addMask(mask));
    }

    std::vector<int64_t> expected(16, 0);
    for (int step = 0; step < 60; ++step) {
        const uint64_t v = rng.nextBounded(256);
        const unsigned m = static_cast<unsigned>(rng.nextBounded(4));
        eng.accumulate(v, handles[m]);
        for (size_t j = 0; j < 16; ++j)
            if (masks[m][j])
                expected[j] += static_cast<int64_t>(v);
    }

    EXPECT_EQ(eng.readCounters(), expected) << "radix=" << radix;
    EXPECT_EQ(eng.stats().invalidStates, 0u);
}

TEST_P(EngineRadix, FullRippleModeAgreesWithIarm)
{
    const unsigned radix = GetParam();
    auto cfg = smallConfig(radix);
    C2MEngine iarm(cfg);
    cfg.ripple = RippleMode::FullRipple;
    C2MEngine full(cfg);

    std::vector<uint8_t> mask(16, 1);
    const unsigned hi = iarm.addMask(mask);
    const unsigned hf = full.addMask(mask);

    Rng rng(17);
    for (int step = 0; step < 40; ++step) {
        const uint64_t v = rng.nextBounded(512);
        iarm.accumulate(v, hi);
        full.accumulate(v, hf);
    }
    EXPECT_EQ(iarm.readCounters(), full.readCounters());
    // IARM must issue (strictly) fewer ripples.
    EXPECT_LT(iarm.stats().ripples, full.stats().ripples);
}

TEST_P(EngineRadix, UnitCountingAgreesWithKary)
{
    const unsigned radix = GetParam();
    auto cfg = smallConfig(radix);
    C2MEngine kary(cfg);
    cfg.counting = CountMode::Unit;
    C2MEngine unit(cfg);

    std::vector<uint8_t> mask(16, 1);
    const unsigned hk = kary.addMask(mask);
    const unsigned hu = unit.addMask(mask);

    Rng rng(23);
    for (int step = 0; step < 15; ++step) {
        const uint64_t v = rng.nextBounded(200);
        kary.accumulate(v, hk);
        unit.accumulate(v, hu);
    }
    EXPECT_EQ(kary.readCounters(), unit.readCounters());
    // k-ary needs fewer increment muPrograms.
    EXPECT_LE(kary.stats().increments, unit.stats().increments);
}

INSTANTIATE_TEST_SUITE_P(Radices, EngineRadix,
                         ::testing::Values(2u, 4u, 6u, 8u, 10u, 16u,
                                           20u));

TEST(Engine, ZeroInputsAreSkipped)
{
    C2MEngine eng(smallConfig(4));
    const unsigned h = eng.addMask(std::vector<uint8_t>(16, 1));
    const auto before = eng.subarray().stats().commands();
    eng.accumulate(0, h);
    EXPECT_EQ(eng.subarray().stats().commands(), before);
    EXPECT_EQ(eng.stats().inputsAccumulated, 1u);
}

TEST(Engine, SignedAccumulationCrossesZero)
{
    auto cfg = smallConfig(10);
    C2MEngine eng(cfg);
    const unsigned h = eng.addMask(std::vector<uint8_t>(16, 1));

    eng.accumulateSigned(5, h);
    eng.accumulateSigned(-12, h);
    auto v = eng.readCounters();
    for (auto x : v)
        EXPECT_EQ(x, -7);

    eng.accumulateSigned(20, h);
    v = eng.readCounters();
    for (auto x : v)
        EXPECT_EQ(x, 13);
}

TEST(Engine, SignedRandomWalkMatchesArithmetic)
{
    auto cfg = smallConfig(4);
    C2MEngine eng(cfg);
    std::vector<uint8_t> mask(16);
    Rng rng(31);
    for (auto &b : mask)
        b = rng.nextBool(0.5);
    const unsigned h = eng.addMask(mask);

    std::vector<int64_t> expected(16, 0);
    for (int step = 0; step < 30; ++step) {
        const int64_t v = rng.nextRange(-40, 40);
        eng.accumulateSigned(v, h);
        for (size_t j = 0; j < 16; ++j)
            if (mask[j])
                expected[j] += v;
    }
    EXPECT_EQ(eng.readCounters(), expected);
}

TEST(Engine, TwoGroupsAreIndependent)
{
    auto cfg = smallConfig(6);
    cfg.numGroups = 2;
    C2MEngine eng(cfg);
    const unsigned h = eng.addMask(std::vector<uint8_t>(16, 1));
    eng.accumulate(7, h, 0);
    eng.accumulate(11, h, 1);
    for (auto v : eng.readCounters(0))
        EXPECT_EQ(v, 7);
    for (auto v : eng.readCounters(1))
        EXPECT_EQ(v, 11);
}

TEST(Engine, AddCountersImplementsAlg2)
{
    auto cfg = smallConfig(10);
    cfg.numGroups = 2;
    C2MEngine eng(cfg);
    std::vector<uint8_t> m0(16, 0), m1(16, 0);
    for (size_t j = 0; j < 16; ++j)
        (j % 2 ? m0 : m1)[j] = 1;
    const unsigned h0 = eng.addMask(m0);
    const unsigned h1 = eng.addMask(m1);
    const unsigned hall = eng.addMask(std::vector<uint8_t>(16, 1));

    eng.accumulate(123, hall, 0);
    eng.accumulate(77, h0, 1);
    eng.accumulate(55, h1, 1);

    eng.addCounters(0, 1);

    const auto v = eng.readCounters(0);
    for (size_t j = 0; j < 16; ++j)
        EXPECT_EQ(v[j], 123 + (j % 2 ? 77 : 55)) << "col " << j;
    // Source group unchanged.
    const auto s = eng.readCounters(1);
    for (size_t j = 0; j < 16; ++j)
        EXPECT_EQ(s[j], j % 2 ? 77 : 55);
}

TEST(Engine, ReluZeroesNegativeCounters)
{
    auto cfg = smallConfig(4);
    C2MEngine eng(cfg);
    std::vector<uint8_t> neg_mask(16, 0), all(16, 1);
    for (size_t j = 0; j < 8; ++j)
        neg_mask[j] = 1;
    const unsigned hn = eng.addMask(neg_mask);
    const unsigned ha = eng.addMask(all);

    eng.accumulateSigned(10, ha);
    eng.accumulateSigned(-25, hn); // first 8 go negative
    eng.relu(0);
    const auto v = eng.readCounters();
    for (size_t j = 0; j < 16; ++j)
        EXPECT_EQ(v[j], j < 8 ? 0 : 10) << "col " << j;
}

TEST(Engine, ShiftLeftDoubles)
{
    auto cfg = smallConfig(6);
    cfg.numGroups = 2;
    C2MEngine eng(cfg);
    const unsigned h = eng.addMask(std::vector<uint8_t>(16, 1));
    eng.accumulate(13, h, 0);
    eng.shiftLeft(0, 1, 3); // x8
    for (auto v : eng.readCounters(0))
        EXPECT_EQ(v, 104);
}

TEST(Engine, DrainClearsPendingOverflows)
{
    auto cfg = smallConfig(4);
    C2MEngine eng(cfg);
    const unsigned h = eng.addMask(std::vector<uint8_t>(16, 1));
    for (int i = 0; i < 10; ++i)
        eng.accumulate(3, h);
    eng.drain(0);
    // After draining, every Onext row must be clear.
    const auto &l = eng.layout(0);
    for (unsigned d = 0; d < l.numDigits(); ++d)
        EXPECT_EQ(eng.subarray().peekRow(l.onextRow(d)).popcount(),
                  0u);
    for (auto v : eng.readCounters())
        EXPECT_EQ(v, 30);
}

// ---------------------------------------------------------------------
// Protection
// ---------------------------------------------------------------------

TEST(EngineProtected, FaultFreeEccMatchesUnprotected)
{
    auto cfg = smallConfig(10);
    cfg.protection = Protection::Ecc;
    cfg.frChecks = 1;
    C2MEngine eng(cfg);
    const unsigned h = eng.addMask(std::vector<uint8_t>(16, 1));
    Rng rng(41);
    int64_t expected = 0;
    for (int i = 0; i < 20; ++i) {
        const uint64_t v = rng.nextBounded(100);
        eng.accumulate(v, h);
        expected += static_cast<int64_t>(v);
    }
    for (auto v : eng.readCounters())
        EXPECT_EQ(v, expected);
    EXPECT_EQ(eng.stats().faultsDetected, 0u);
    EXPECT_GT(eng.stats().checksRun, 0u);
}

TEST(EngineProtected, EccDetectsAndRetriesUnderFaults)
{
    auto cfg = smallConfig(10, 64);
    cfg.protection = Protection::Ecc;
    cfg.frChecks = 2;
    cfg.faultRate = 1e-3;
    cfg.maxRetries = 8;
    C2MEngine eng(cfg);
    const unsigned h = eng.addMask(std::vector<uint8_t>(64, 1));
    int64_t expected = 0;
    Rng rng(43);
    for (int i = 0; i < 25; ++i) {
        const uint64_t v = rng.nextBounded(50);
        eng.accumulate(v, h);
        expected += static_cast<int64_t>(v);
    }
    EXPECT_GT(eng.stats().faultsDetected, 0u);
    EXPECT_GT(eng.stats().retries, 0u);

    // Detection + retry keeps most counters exact; the residue is
    // the unchecked commit OR (documented in DESIGN.md).
    const auto v = eng.readCounters();
    size_t exact = 0;
    for (auto x : v)
        if (x == expected)
            ++exact;
    EXPECT_GE(exact, v.size() * 7 / 10);
}

TEST(EngineProtected, EccBeatsUnprotectedUnderFaults)
{
    const double p = 2e-3;
    auto make = [&](Protection prot) {
        auto cfg = smallConfig(10, 64);
        cfg.protection = prot;
        cfg.faultRate = p;
        cfg.maxRetries = 8;
        cfg.seed = 91;
        return C2MEngine(cfg);
    };

    auto run = [&](C2MEngine &eng) {
        const unsigned h = eng.addMask(std::vector<uint8_t>(64, 1));
        Rng rng(45);
        int64_t expected = 0;
        for (int i = 0; i < 30; ++i) {
            const uint64_t v = rng.nextBounded(60);
            eng.accumulate(v, h);
            expected += static_cast<int64_t>(v);
        }
        double err = 0;
        for (auto x : eng.readCounters())
            err += std::abs(static_cast<double>(x - expected));
        return err;
    };

    auto none_eng = make(Protection::None);
    auto ecc_eng = make(Protection::Ecc);
    const double err_none = run(none_eng);
    const double err_ecc = run(ecc_eng);
    EXPECT_LT(err_ecc, err_none);
}

TEST(EngineProtected, TmrFaultFreeWorks)
{
    auto cfg = smallConfig(4);
    cfg.protection = Protection::Tmr;
    C2MEngine eng(cfg);
    const unsigned h = eng.addMask(std::vector<uint8_t>(16, 1));
    eng.accumulate(42, h);
    eng.accumulate(13, h);
    for (auto v : eng.readCounters())
        EXPECT_EQ(v, 55);
    EXPECT_GT(eng.stats().voteOps, 0u);
}

TEST(EngineProtected, TmrMasksSingleReplicaFaults)
{
    auto cfg = smallConfig(4, 64);
    cfg.protection = Protection::Tmr;
    cfg.faultRate = 1e-3;
    cfg.seed = 7;
    C2MEngine tmr(cfg);
    cfg.protection = Protection::None;
    C2MEngine raw(cfg);

    auto run = [&](C2MEngine &eng) {
        const unsigned h = eng.addMask(std::vector<uint8_t>(64, 1));
        int64_t expected = 0;
        Rng rng(49);
        for (int i = 0; i < 25; ++i) {
            const uint64_t v = rng.nextBounded(40);
            eng.accumulate(v, h);
            expected += static_cast<int64_t>(v);
        }
        double err = 0;
        for (auto x : eng.readCounters())
            err += std::abs(static_cast<double>(x - expected));
        return err;
    };

    EXPECT_LE(run(tmr), run(raw));
}

TEST(EngineProtected, EccCostCheaperThanTmr)
{
    auto cfg = smallConfig(10);
    cfg.protection = Protection::Ecc;
    cfg.frChecks = 1;
    C2MEngine ecc_eng(cfg);
    cfg.protection = Protection::Tmr;
    C2MEngine tmr_eng(cfg);
    cfg.protection = Protection::None;
    C2MEngine raw_eng(cfg);

    auto ops = [](C2MEngine &eng) {
        const unsigned h = eng.addMask(std::vector<uint8_t>(16, 1));
        const auto before = eng.subarray().stats().commands();
        eng.accumulate(9, h);
        return eng.subarray().stats().commands() - before;
    };

    const auto raw = ops(raw_eng);
    const auto ecc = ops(ecc_eng);
    const auto tmr = ops(tmr_eng);
    EXPECT_GT(ecc, raw);
    EXPECT_GT(tmr, ecc); // TMR's ~4x beats ECC's overhead (Sec. 3)
}

TEST(Engine, ClearResetsCountersButKeepsMasks)
{
    C2MEngine eng(smallConfig(4));
    const unsigned h = eng.addMask(std::vector<uint8_t>(16, 1));
    eng.accumulate(9, h);
    eng.clear();
    for (auto v : eng.readCounters())
        EXPECT_EQ(v, 0);
    eng.accumulate(5, h); // mask still valid
    for (auto v : eng.readCounters())
        EXPECT_EQ(v, 5);
}
