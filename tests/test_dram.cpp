/**
 * @file
 * DRAM substrate tests: geometry (Tab. 2), timing presets, the
 * AAP stream scheduler's tRRD/tFAW/bank-occupancy invariants
 * (Sec. 7.2.1), energy model, and vertical layout transposition.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dram/energy.hpp"
#include "dram/geometry.hpp"
#include "dram/scheduler.hpp"
#include "dram/subarray.hpp"
#include "dram/timing.hpp"

using namespace c2m;

TEST(Geometry, Table2Configuration)
{
    const auto g = dram::DramGeometry::ddr5_4gb();
    EXPECT_EQ(g.chipBits() >> 30, 4u);          // 4 Gb chip
    EXPECT_EQ(g.banksPerChip, 32u);             // 32 banks
    EXPECT_EQ(g.rowBytesPerChip, 1024u);        // 1 KB chip row
    EXPECT_EQ(g.rankRowBytes(), 8192u);         // 8 KB controller row
    EXPECT_EQ(g.rowsPerSubarray, 1024u);        // 1024 rows/subarray
    EXPECT_EQ(g.chipsPerRank(), 9u);            // 8 data + 1 ECC
    EXPECT_EQ(g.colsPerRankRow(), 65536u);
    EXPECT_NE(g.describe().find("32 banks"), std::string::npos);
}

TEST(Timing, Ddr5Preset)
{
    const auto t = dram::DramTimings::ddr5_4400();
    EXPECT_NEAR(t.tAapNs(), 46.5, 1e-9);
    EXPECT_NEAR(t.tFawNs, 14.5, 1e-9); // paper's conservative tFAW
    EXPECT_GT(t.bankPeriodNs(), t.tAapNs());
    EXPECT_GT(t.rowAccessNs(8192), 128 * t.tBurstNs);
}

TEST(Scheduler, SingleBankPeriodIsTaapPlusTrrd)
{
    // Sec. 7.2.1: one AAP every tAAP + tRRD on a single bank.
    const auto t = dram::DramTimings::ddr5_4400();
    dram::AapScheduler s(t, 1);
    const double i0 = s.issueOne(0);
    const double i1 = s.issueOne(0);
    EXPECT_NEAR(i1 - i0, t.bankPeriodNs(), 1e-9);
}

TEST(Scheduler, FourBanksOverlapButFifthWaits)
{
    // Four AAPs overlap tRRD apart; the fifth (bank 0 again) starts
    // tAAP + tRRD after the first.
    const auto t = dram::DramTimings::ddr5_4400();
    dram::AapScheduler s(t, 4);
    std::vector<double> issues;
    for (int i = 0; i < 5; ++i)
        issues.push_back(s.issueOne(i % 4));
    for (int i = 1; i < 4; ++i)
        EXPECT_NEAR(issues[i] - issues[i - 1], t.tRrdNs, 1e-9);
    EXPECT_NEAR(issues[4] - issues[0], t.bankPeriodNs(), 1e-9);
}

TEST(Scheduler, SixteenBanksBoundByFaw)
{
    // With 16 banks the binding constraint is max(tRRD, tFAW/4).
    const auto t = dram::DramTimings::ddr5_4400();
    dram::AapScheduler s(t, 16);
    std::vector<double> issues;
    for (int i = 0; i < 32; ++i)
        issues.push_back(s.issueOne(i % 16));
    // Any 5 consecutive issues span at least tFAW.
    for (size_t i = 4; i < issues.size(); ++i)
        EXPECT_GE(issues[i] - issues[i - 4], t.tFawNs - 1e-9);
    // Steady rate close to the analytic period.
    const double period = (issues.back() - issues[8]) /
                          static_cast<double>(issues.size() - 9);
    EXPECT_NEAR(period,
                dram::AapScheduler::steadyPeriodNs(t, 16), 0.5);
}

TEST(Scheduler, PerBankOccupancyRespected)
{
    const auto t = dram::DramTimings::ddr5_4400();
    dram::AapScheduler s(t, 3);
    std::vector<std::vector<double>> per_bank(3);
    for (int i = 0; i < 30; ++i)
        per_bank[i % 3].push_back(s.issueOne(i % 3));
    for (const auto &issues : per_bank)
        for (size_t i = 1; i < issues.size(); ++i)
            EXPECT_GE(issues[i] - issues[i - 1],
                      t.bankPeriodNs() - 1e-9);
}

TEST(Scheduler, AnalyticMatchesEventDriven)
{
    const auto t = dram::DramTimings::ddr5_4400();
    for (unsigned banks : {1u, 2u, 4u, 8u, 16u}) {
        dram::AapScheduler s(t, banks);
        const uint64_t count = 2000;
        s.issueRoundRobin(count);
        const double event = s.finishNs();
        const double analytic =
            dram::AapScheduler::streamTimeNs(t, count, banks);
        EXPECT_NEAR(event / analytic, 1.0, 0.02)
            << "banks=" << banks;
    }
}

TEST(Scheduler, MoreBanksNeverSlower)
{
    const auto t = dram::DramTimings::ddr5_4400();
    double prev = 1e30;
    for (unsigned banks : {1u, 2u, 4u, 8u, 16u}) {
        const double time =
            dram::AapScheduler::streamTimeNs(t, 100000, banks);
        EXPECT_LE(time, prev + 1e-6) << "banks=" << banks;
        prev = time;
    }
}

TEST(Scheduler, BankScalingSaturates)
{
    // Sec. 7.2.1: 1 -> 4 banks is ~4x, but 16 banks saturate at the
    // tRRD/tFAW limit, well short of 16x.
    const auto t = dram::DramTimings::ddr5_4400();
    const double t1 =
        dram::AapScheduler::streamTimeNs(t, 1 << 20, 1);
    const double t4 =
        dram::AapScheduler::streamTimeNs(t, 1 << 20, 4);
    const double t16 =
        dram::AapScheduler::streamTimeNs(t, 1 << 20, 16);
    EXPECT_NEAR(t1 / t4, 4.0, 0.2);
    EXPECT_LT(t1 / t16, 16.0);
    EXPECT_GT(t1 / t16, 10.0);
}

TEST(Energy, AapEnergyAcrossRank)
{
    const auto e = dram::EnergyModel::ddr5();
    EXPECT_NEAR(e.aapEnergyNj(), 9 * (2 * 1.2 + 0.3), 1e-9);
    EXPECT_GT(e.rowAccessEnergyNj(8192), e.apEnergyNj());
    EXPECT_NEAR(e.rankAreaMm2(), 405.0, 1e-9);
}

TEST(VerticalLayout, TransposeRoundTrip)
{
    Rng rng(3);
    std::vector<uint64_t> vals(100);
    for (auto &v : vals)
        v = rng.nextBounded(1ULL << 20);
    const auto rows = dram::transposeToRows(vals, 20, 128);
    EXPECT_EQ(rows.size(), 20u);
    EXPECT_EQ(dram::transposeFromRows(rows, 100), vals);
}

TEST(VerticalLayout, MaskRowPadsWithZeros)
{
    const auto row = dram::maskRow({1, 0, 1}, 8);
    EXPECT_EQ(row.toString(), "10100000");
}
