/**
 * @file
 * RCA (SIMDRAM baseline) muProgram tests: masked bit-serial addition
 * equals plain integer addition, cost is width-proportional and
 * radix-independent, and the protected variant detects faults.
 */

#include <gtest/gtest.h>

#include "cim/ambit.hpp"
#include "common/rng.hpp"
#include "dram/subarray.hpp"
#include "uprog/codegen_rca.hpp"

using namespace c2m;

namespace {

struct RcaHarness
{
    uprog::RcaLayout layout;
    unsigned maskRow;
    cim::AmbitSubarray sub;
    uprog::RcaCodegen gen;

    RcaHarness(unsigned width, size_t cols,
               uprog::RcaCodegen::Options opts = {})
        : layout{width, 0},
          maskRow(layout.endRow()),
          sub(layout.endRow() + 1, cols),
          gen(layout, opts)
    {
    }

    void
    writeAcc(const std::vector<uint64_t> &vals)
    {
        const auto rows = dram::transposeToRows(vals, layout.width,
                                                sub.numCols());
        for (unsigned b = 0; b < layout.width; ++b)
            sub.rawRow(layout.bitRow(b)) = rows[b];
    }

    std::vector<uint64_t>
    readAcc(size_t count)
    {
        std::vector<BitVector> rows;
        for (unsigned b = 0; b < layout.width; ++b)
            rows.push_back(sub.peekRow(layout.bitRow(b)));
        return dram::transposeFromRows(rows, count);
    }

    void
    run(const uprog::CheckedProgram &prog)
    {
        for (const auto &b : prog.blocks)
            sub.run(b.prog);
    }
};

} // namespace

class RcaWidth : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RcaWidth, MaskedAccumulateEqualsIntegerAdd)
{
    const unsigned W = GetParam();
    const size_t cols = 16;
    RcaHarness h(W, cols);
    Rng rng(100 + W);

    std::vector<uint64_t> acc(cols);
    const uint64_t mod_mask =
        W == 64 ? ~0ULL : (1ULL << W) - 1;
    for (auto &v : acc)
        v = rng.next() & mod_mask;
    h.writeAcc(acc);

    for (int step = 0; step < 6; ++step) {
        const uint64_t addend = rng.next() & mod_mask;
        for (size_t j = 0; j < cols; ++j) {
            const bool m = rng.nextBool(0.5);
            h.sub.rawRow(h.maskRow).set(j, m);
            if (m)
                acc[j] = (acc[j] + addend) & mod_mask;
        }
        h.run(h.gen.maskedAccumulate(addend, h.maskRow));
    }

    EXPECT_EQ(h.readAcc(cols), acc);
}

TEST_P(RcaWidth, CostIsElevenOpsPerBit)
{
    const unsigned W = GetParam();
    uprog::RcaLayout layout{W, 0};
    uprog::RcaCodegen gen(layout);
    const size_t ops = gen.maskedAccumulate(1, 99).totalOps();
    EXPECT_EQ(ops, uprog::RcaCodegen::kOpsPerBit * W + 1);
}

INSTANTIATE_TEST_SUITE_P(Widths, RcaWidth,
                         ::testing::Values(4u, 8u, 16u, 32u, 64u));

TEST(Rca, ZeroAddendStillRipples)
{
    // The paper's key point: the RCA pays the full carry chain even
    // for tiny (or zero) addends -- same op count for any value.
    uprog::RcaLayout layout{32, 0};
    uprog::RcaCodegen gen(layout);
    EXPECT_EQ(gen.maskedAccumulate(0, 99).totalOps(),
              gen.maskedAccumulate((1u << 31) | 1u, 99).totalOps());
}

TEST(Rca, CarryPropagatesAcrossFullWidth)
{
    RcaHarness h(16, 2);
    h.writeAcc({0xffffu, 0x00ffu});
    h.sub.rawRow(h.maskRow).fill(true);
    h.run(h.gen.maskedAccumulate(1, h.maskRow));
    EXPECT_EQ(h.readAcc(2), (std::vector<uint64_t>{0, 0x100}));
}

TEST(Rca, ClearAccumulatorsZeroes)
{
    RcaHarness h(8, 4);
    h.writeAcc({1, 2, 3, 4});
    h.sub.run(h.gen.clearAccumulators());
    EXPECT_EQ(h.readAcc(4), (std::vector<uint64_t>{0, 0, 0, 0}));
}

TEST(RcaProtected, FaultFreeMatchesUnprotected)
{
    uprog::RcaCodegen::Options opts;
    opts.protect = true;
    RcaHarness h(16, 8, opts);
    std::vector<uint64_t> acc = {1, 2, 3, 4, 5, 6, 7, 8};
    h.writeAcc(acc);
    h.sub.rawRow(h.maskRow).fill(true);
    h.run(h.gen.maskedAccumulate(100, h.maskRow));
    for (auto &v : acc)
        v += 100;
    EXPECT_EQ(h.readAcc(8), acc);
}

TEST(RcaProtected, CostRoughlyDoubles)
{
    uprog::RcaLayout layout{32, 0};
    uprog::RcaCodegen plain(layout);
    uprog::RcaCodegen::Options opts;
    opts.protect = true;
    uprog::RcaCodegen prot(layout, opts);
    const double ratio =
        static_cast<double>(prot.maskedAccumulate(1, 99).totalOps()) /
        static_cast<double>(plain.maskedAccumulate(1, 99).totalOps());
    EXPECT_GT(ratio, 1.8);
    EXPECT_LT(ratio, 2.8);
}

TEST(RcaProtected, ChecksFlagInjectedFaults)
{
    uprog::RcaCodegen::Options opts;
    opts.protect = true;
    uprog::RcaLayout layout{8, 0};
    uprog::RcaCodegen gen(layout, opts);
    const auto prog = gen.maskedAccumulate(3, layout.endRow());

    // With a high fault rate, duplicate computations must disagree in
    // at least one block of one run.
    cim::FaultModel fm;
    fm.pMaj = 0.05;
    cim::AmbitSubarray sub(layout.endRow() + 1, 64, fm, 5);
    sub.rawRow(layout.endRow()).fill(true);

    size_t mismatches = 0;
    for (int trial = 0; trial < 10; ++trial) {
        for (const auto &blk : prog.blocks) {
            sub.run(blk.prog);
            for (const auto &chk : blk.checks) {
                ASSERT_EQ(chk.mode,
                          uprog::FrCheck::Mode::EqualRows);
                if (sub.peekRow(chk.frRow) != sub.peekRow(chk.rowA))
                    ++mismatches;
            }
        }
    }
    EXPECT_GT(mismatches, 0u);
}
