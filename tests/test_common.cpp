/**
 * @file
 * Unit tests for the common substrate: BitVector, Rng, statistics
 * and table rendering.
 */

#include <gtest/gtest.h>

#include "common/bitvec.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

using namespace c2m;

TEST(BitVector, StartsZeroed)
{
    BitVector v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_EQ(v.popcount(), 0u);
    for (size_t i = 0; i < v.size(); ++i)
        EXPECT_FALSE(v.get(i));
}

TEST(BitVector, SetGetRoundTrip)
{
    BitVector v(100);
    v.set(0, true);
    v.set(63, true);
    v.set(64, true);
    v.set(99, true);
    EXPECT_TRUE(v.get(0));
    EXPECT_TRUE(v.get(63));
    EXPECT_TRUE(v.get(64));
    EXPECT_TRUE(v.get(99));
    EXPECT_EQ(v.popcount(), 4u);
    v.set(63, false);
    EXPECT_FALSE(v.get(63));
    EXPECT_EQ(v.popcount(), 3u);
}

TEST(BitVector, FromStringLsbFirst)
{
    BitVector v = BitVector::fromString("10110");
    EXPECT_TRUE(v.get(0));
    EXPECT_FALSE(v.get(1));
    EXPECT_TRUE(v.get(2));
    EXPECT_TRUE(v.get(3));
    EXPECT_FALSE(v.get(4));
    EXPECT_EQ(v.toString(), "10110");
}

TEST(BitVector, FillRespectsTail)
{
    BitVector v(70);
    v.fill(true);
    EXPECT_EQ(v.popcount(), 70u);
    // Tail bits beyond 70 must be masked out of the last word.
    EXPECT_EQ(v.word(1) >> 6, 0u);
}

TEST(BitVector, InvertIsInvolution)
{
    Rng rng(1);
    BitVector v(97);
    v.randomize(rng);
    BitVector w = v;
    w.invert();
    for (size_t i = 0; i < v.size(); ++i)
        EXPECT_NE(v.get(i), w.get(i));
    w.invert();
    EXPECT_EQ(v, w);
}

TEST(BitVector, LogicOps)
{
    BitVector a = BitVector::fromString("1100");
    BitVector b = BitVector::fromString("1010");
    BitVector r(4);
    r.assignAnd(a, b);
    EXPECT_EQ(r.toString(), "1000");
    r.assignOr(a, b);
    EXPECT_EQ(r.toString(), "1110");
    r.assignXor(a, b);
    EXPECT_EQ(r.toString(), "0110");
    r.assignNor(a, b);
    EXPECT_EQ(r.toString(), "0001");
    r.assignNot(a);
    EXPECT_EQ(r.toString(), "0011");
}

TEST(BitVector, Maj3MatchesTruthTable)
{
    // All eight operand combinations in one 8-column vector.
    BitVector a = BitVector::fromString("00001111");
    BitVector b = BitVector::fromString("00110011");
    BitVector c = BitVector::fromString("01010101");
    BitVector r(8);
    r.assignMaj3(a, b, c);
    EXPECT_EQ(r.toString(), "00010111");
}

TEST(BitVector, FaultInjectionZeroProbability)
{
    Rng rng(2);
    BitVector v(1024);
    v.randomize(rng);
    BitVector w = v;
    EXPECT_EQ(w.injectFaults(rng, 0.0), 0u);
    EXPECT_EQ(v, w);
}

TEST(BitVector, FaultInjectionCertainty)
{
    Rng rng(3);
    BitVector v(256);
    EXPECT_EQ(v.injectFaults(rng, 1.0), 256u);
    EXPECT_EQ(v.popcount(), 256u);
}

TEST(BitVector, FaultInjectionRateIsCalibrated)
{
    Rng rng(4);
    const double p = 0.01;
    const size_t bits = 1 << 16;
    size_t total = 0;
    const int trials = 50;
    for (int t = 0; t < trials; ++t) {
        BitVector v(bits);
        total += v.injectFaults(rng, p);
    }
    const double measured =
        static_cast<double>(total) / (double(bits) * trials);
    EXPECT_NEAR(measured, p, p * 0.15);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(6);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, GeometricMeanMatches)
{
    Rng rng(8);
    const double p = 0.05;
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextGeometric(p));
    const double mean_gap = sum / n;
    // E[gap] = (1-p)/p = 19.
    EXPECT_NEAR(mean_gap, (1 - p) / p, 1.0);
}

TEST(Stats, MeanAndStddev)
{
    std::vector<double> xs = {1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(mean(xs), 3.0);
    EXPECT_NEAR(stddev(xs), std::sqrt(2.5), 1e-12);
}

TEST(Stats, Geomean)
{
    std::vector<double> xs = {1, 4, 16};
    EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
}

TEST(Stats, Rmse)
{
    std::vector<int64_t> a = {1, 2, 3};
    std::vector<int64_t> b = {1, 2, 3};
    EXPECT_DOUBLE_EQ(rmse(a, b), 0.0);
    b = {2, 2, 3};
    EXPECT_NEAR(rmse(a, b), std::sqrt(1.0 / 3.0), 1e-12);
}

TEST(Stats, BinaryScore)
{
    BinaryScore s;
    s.add(true, true);   // tp
    s.add(true, false);  // fp
    s.add(false, false); // tn
    s.add(false, true);  // fn
    EXPECT_DOUBLE_EQ(s.precision(), 0.5);
    EXPECT_DOUBLE_EQ(s.recall(), 0.5);
    EXPECT_DOUBLE_EQ(s.f1(), 0.5);
    EXPECT_DOUBLE_EQ(s.accuracy(), 0.5);
}

TEST(Stats, PerfectF1)
{
    BinaryScore s;
    for (int i = 0; i < 10; ++i)
        s.add(true, true);
    for (int i = 0; i < 90; ++i)
        s.add(false, false);
    EXPECT_DOUBLE_EQ(s.f1(), 1.0);
}

TEST(Stats, HistogramBins)
{
    Histogram h(0, 4);
    h.add(0);
    h.add(2, 3);
    h.add(4);
    h.add(7);  // overflow
    h.add(-1); // underflow
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(2), 3u);
    EXPECT_EQ(h.binCount(4), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.total(), 7u);
}

TEST(Stats, HistogramRenderContainsCounts)
{
    Histogram h(0, 2);
    h.add(1, 5);
    const std::string out = h.render(false);
    EXPECT_NE(out.find("1\t5"), std::string::npos);
}

TEST(Table, RendersAlignedAndCsv)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", TextTable::fmt(uint64_t{42})});
    t.addRow({"b", TextTable::fmt(3.14159, 2)});
    const std::string text = t.render();
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("42"), std::string::npos);
    const std::string csv = t.csv();
    EXPECT_NE(csv.find("name,value"), std::string::npos);
    EXPECT_NE(csv.find("b,3.14"), std::string::npos);
}

TEST(Table, SciFormat)
{
    EXPECT_EQ(TextTable::sci(1.5e-6, 1), "1.5e-06");
}
