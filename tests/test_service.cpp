/**
 * @file
 * Async ingest service tests: op coalescing, concurrent producers
 * vs. blocking serial replay, epoch snapshot consistency, block/drop
 * backpressure accounting, work stealing on skewed streams, merged
 * service/engine stats reporting, and the async workload overloads.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <unordered_map>

#include "common/rng.hpp"
#include "core/sharded.hpp"
#include "reliability/scrubber.hpp"
#include "service/coalesce.hpp"
#include "service/ingest.hpp"
#include "virt/virtspace.hpp"
#include "workloads/dna.hpp"
#include "workloads/sparsity.hpp"

using namespace c2m;
using core::BatchOp;
using core::EngineConfig;
using core::EngineStats;
using core::ShardedEngine;
using service::Backpressure;
using service::IngestConfig;
using service::IngestService;
using service::ServiceStats;

namespace {

EngineConfig
baseConfig(size_t counters = 64)
{
    EngineConfig cfg;
    cfg.radix = 4;
    cfg.capacityBits = 20;
    cfg.numCounters = counters;
    cfg.maxMaskRows = 1;
    return cfg;
}

std::vector<BatchOp>
randomOps(size_t n, size_t counters, uint64_t seed,
          bool with_negatives)
{
    Rng rng(seed);
    std::vector<BatchOp> ops;
    ops.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        BatchOp op;
        op.counter = rng.nextBounded(counters);
        op.value = static_cast<int64_t>(rng.nextBounded(60));
        if (with_negatives && rng.nextBool(0.4))
            op.value = -op.value;
        op.group = 0;
        ops.push_back(op);
    }
    return ops;
}

} // namespace

TEST(Coalesce, MergesDuplicatesKeepsFirstOccurrenceOrder)
{
    const std::vector<BatchOp> ops = {
        {5, 2, 0}, {3, 1, 0}, {5, -1, 0}, {7, 4, 0}, {3, -1, 0}};
    const auto r = service::coalesceOps(ops);
    ASSERT_EQ(r.ops.size(), 2u);
    // Counter 3 cancels to zero and is elided; 5 and 7 keep the
    // order they first appeared in.
    EXPECT_EQ(r.ops[0].counter, 5u);
    EXPECT_EQ(r.ops[0].value, 1);
    EXPECT_EQ(r.ops[1].counter, 7u);
    EXPECT_EQ(r.ops[1].value, 4);
    EXPECT_EQ(r.merged, 3u);
}

TEST(Coalesce, GroupsStaySeparate)
{
    const std::vector<BatchOp> ops = {
        {5, 2, 0}, {5, 3, 1}, {5, 1, 0}};
    const auto r = service::coalesceOps(ops);
    ASSERT_EQ(r.ops.size(), 2u);
    EXPECT_EQ(r.ops[0].group, 0u);
    EXPECT_EQ(r.ops[0].value, 3);
    EXPECT_EQ(r.ops[1].group, 1u);
    EXPECT_EQ(r.ops[1].value, 3);
    EXPECT_EQ(r.merged, 1u);
}

TEST(Ingest, SingleProducerMatchesSerialReplay)
{
    const auto cfg = baseConfig(64);
    const auto ops = randomOps(300, cfg.numCounters, 7, true);

    ShardedEngine engine(cfg, 4);
    IngestService svc(engine);
    EXPECT_EQ(svc.submit(ops), ops.size());
    const auto got = svc.readCounters();
    EXPECT_EQ(got, core::replaySerial(cfg, ops));

    const auto st = svc.serviceStats();
    EXPECT_EQ(st.submitted, ops.size());
    EXPECT_EQ(st.dropped, 0u);
    EXPECT_EQ(st.flushedOps + st.coalesced, ops.size());
    EXPECT_GE(st.epochs, 1u);
}

TEST(Ingest, ConcurrentProducersMatchSerialReplay)
{
    const auto cfg = baseConfig(48);
    const unsigned producers = 4;
    const auto ops = randomOps(400, cfg.numCounters, 11, true);

    ShardedEngine engine(cfg, 4);
    IngestService svc(engine);
    EXPECT_EQ(service::submitConcurrent(svc, ops, producers),
              ops.size());
    // Integer sums commute, so any producer interleaving must be
    // bit-identical to one blocking engine replaying the stream.
    EXPECT_EQ(svc.readCounters(), core::replaySerial(cfg, ops));
}

TEST(Ingest, CoalescingHalvesFabricOpsBitIdentical)
{
    auto cfg = baseConfig(32);
    // Hot keys: 400 ops over 16 distinct counters.
    Rng rng(13);
    std::vector<BatchOp> ops;
    for (size_t i = 0; i < 400; ++i)
        ops.push_back({rng.nextBounded(16) * 2,
                       static_cast<int64_t>(1 + rng.nextBounded(5)),
                       0});
    const auto reference = core::replaySerial(cfg, ops);

    uint64_t inputs_on = 0;
    uint64_t inputs_off = 0;
    for (const bool coalesce : {true, false}) {
        ShardedEngine engine(cfg, 4);
        IngestConfig icfg;
        icfg.coalesce = coalesce;
        IngestService svc(engine, icfg);
        EXPECT_EQ(svc.submit(ops), ops.size());
        EXPECT_EQ(svc.readCounters(), reference);
        const auto est = svc.engineStats();
        (coalesce ? inputs_on : inputs_off) =
            est.inputsAccumulated;
        if (coalesce) {
            const auto st = svc.serviceStats();
            EXPECT_GT(st.coalesced, 0u);
            EXPECT_EQ(st.flushedOps + st.coalesced, ops.size());
        }
    }
    EXPECT_EQ(inputs_off, 400u);
    // A same-shard span lands in one epoch, so every duplicate in
    // the batch coalesces: >= 2x fewer fabric accumulates.
    EXPECT_LE(2 * inputs_on, inputs_off);
}

TEST(Ingest, PlannerDrainCutsFabricProgramsBitIdentical)
{
    auto cfg = baseConfig(64);
    // All-positive skewed stream in a one-epoch window, so each
    // shard's coalesced bucket becomes one digit-plane plan.
    Rng rng(29);
    std::vector<BatchOp> ops;
    for (size_t i = 0; i < 800; ++i)
        ops.push_back({rng.nextBounded(cfg.numCounters),
                       static_cast<int64_t>(1 + rng.nextBounded(9)),
                       0});
    const auto reference = core::replaySerial(cfg, ops);

    uint64_t programs_on = 0, programs_off = 0;
    for (const bool planner : {true, false}) {
        auto pcfg = cfg;
        pcfg.drainPlanner = planner;
        ShardedEngine engine(pcfg, 4);
        IngestConfig icfg;
        icfg.minDrainOps = ops.size();
        icfg.queueCapacity = 2 * ops.size();
        IngestService svc(engine, icfg);
        EXPECT_EQ(svc.submit(ops), ops.size());
        EXPECT_EQ(svc.readCounters(), reference);
        const auto est = svc.engineStats();
        const auto sst = svc.serviceStats();
        (planner ? programs_on : programs_off) = est.increments;
        if (planner) {
            // Per-epoch plan stats are sampled from the engine delta
            // while the drainer holds the engine.
            EXPECT_GT(sst.plans, 0u);
            EXPECT_GT(sst.planPrograms, 0u);
            EXPECT_EQ(sst.plannedOps + sst.planFallbackOps,
                      sst.flushedOps + 0u);
            const auto report = svc.report();
            EXPECT_EQ(report.at("service.plans"), sst.plans);
            EXPECT_EQ(report.at("engine.plan_programs"),
                      est.planPrograms);
        } else {
            EXPECT_EQ(sst.plans, 0u);
            EXPECT_EQ(sst.planPrograms, 0u);
        }
    }
    // The column-parallel drain must clearly beat per-op replay.
    EXPECT_LT(4 * programs_on, programs_off);
}

TEST(Ingest, SnapshotNeverTearsAnAtomicSpan)
{
    const auto cfg = baseConfig(64);
    ShardedEngine engine(cfg, 4);
    IngestService svc(engine);

    constexpr size_t kSpan = 8;
    constexpr size_t kRounds = 30;
    std::thread writer([&] {
        const std::vector<BatchOp> span(kSpan, BatchOp{3, 1, 0});
        for (size_t r = 0; r < kRounds; ++r)
            svc.submit(span);
    });

    // Same-shard spans are epoch-atomic: every snapshot sees a
    // multiple of the span length, monotonically nondecreasing.
    int64_t last = 0;
    uint64_t last_epoch = 0;
    for (int i = 0; i < 20; ++i) {
        const auto snap = svc.snapshot();
        const int64_t v = snap.counters[3];
        EXPECT_EQ(v % static_cast<int64_t>(kSpan), 0);
        EXPECT_GE(v, last);
        EXPECT_GE(snap.epoch, last_epoch);
        last = v;
        last_epoch = snap.epoch;
    }
    writer.join();
    const auto final = svc.readCounters();
    EXPECT_EQ(final[3],
              static_cast<int64_t>(kSpan * kRounds));
}

TEST(Ingest, BlockBackpressureStallsButLosesNothing)
{
    const auto cfg = baseConfig(32);
    ShardedEngine engine(cfg, 4);
    IngestConfig icfg;
    icfg.queueCapacity = 2;
    icfg.backpressure = Backpressure::Block;
    IngestService svc(engine, icfg);

    // All ops on one shard so the producer outruns the fabric.
    size_t accepted = 0;
    for (int i = 0; i < 150; ++i)
        accepted += svc.submit(BatchOp{1, 1, 0}) ? 1 : 0;
    EXPECT_EQ(accepted, 150u);

    EXPECT_EQ(svc.readCounters()[1], 150);
    const auto st = svc.serviceStats();
    EXPECT_EQ(st.submitted, 150u);
    EXPECT_EQ(st.dropped, 0u);
    EXPECT_GT(st.stalls, 0u);
}

TEST(Ingest, DropBackpressureCountsEveryReject)
{
    const auto cfg = baseConfig(32);
    ShardedEngine engine(cfg, 4);
    IngestConfig icfg;
    icfg.queueCapacity = 8;
    icfg.backpressure = Backpressure::Drop;
    icfg.coalesce = false;
    IngestService svc(engine, icfg);

    size_t accepted = 0;
    for (int i = 0; i < 400; ++i)
        accepted += svc.submit(BatchOp{1, 1, 0}) ? 1 : 0;

    // Accepted ops are applied exactly once, rejects are counted,
    // nothing else is lost.
    EXPECT_EQ(svc.readCounters()[1],
              static_cast<int64_t>(accepted));
    const auto st = svc.serviceStats();
    EXPECT_EQ(st.submitted, accepted);
    EXPECT_EQ(st.dropped, 400u - accepted);
    EXPECT_GT(st.dropped, 0u);
    EXPECT_EQ(st.stalls, 0u);
}

TEST(Ingest, WorkStealingOnFullySkewedBatch)
{
    const auto cfg = baseConfig(64);
    // Every op lands on shard 0 (counters 0..15 of 64 over 4
    // shards): with stealing, any idle lane may claim the bucket.
    Rng rng(17);
    std::vector<BatchOp> ops;
    for (size_t i = 0; i < 300; ++i)
        ops.push_back({rng.nextBounded(16),
                       static_cast<int64_t>(rng.nextBounded(30)),
                       0});
    const auto reference = core::replaySerial(cfg, ops);

    for (const bool stealing : {true, false}) {
        ShardedEngine engine(cfg, 4);
        IngestConfig icfg;
        icfg.workStealing = stealing;
        IngestService svc(engine, icfg);
        EXPECT_EQ(service::submitConcurrent(svc, ops, 4),
                  ops.size());
        EXPECT_EQ(svc.readCounters(), reference)
            << "stealing=" << stealing;
    }
}

TEST(Ingest, SixteenProducersEightShardsBitExact)
{
    // The heaviest contention cell the benches run: 16 producers
    // racing into an 8-shard engine with the hierarchical drain
    // pipeline (merged gang-issued plans) active end to end.
    const auto cfg = baseConfig(256);
    const auto ops = randomOps(4096, cfg.numCounters, 23, true);

    auto pcfg = cfg;
    pcfg.drainPlanner = true;
    ShardedEngine engine(pcfg, 8);
    IngestService svc(engine);
    EXPECT_EQ(service::submitConcurrent(svc, ops, 16), ops.size());
    EXPECT_EQ(svc.readCounters(), core::replaySerial(cfg, ops));

    // Every batched op is accounted exactly once by the planner, and
    // the attribution ledger (including the plan_fanout row gang
    // followers charge) stays bit-exact under full concurrency.
    const auto sst = svc.serviceStats();
    const auto est = svc.engineStats();
    EXPECT_EQ(sst.plannedOps + sst.planFallbackOps, sst.flushedOps);
    EXPECT_LE(est.planLeadPrograms, est.planPrograms);
    EXPECT_LE(est.fabric.gangedCommands, est.fabric.commands());
    double ledger = 0.0;
    for (double row : est.fabric.attrNs)
        ledger += row;
    EXPECT_EQ(ledger, est.fabric.fabricNs);
}

TEST(Ingest, ScrubAndVirtStayExactThroughEpochPipeline)
{
    // Scrub sweeps and virt spill/restore traffic ride the same
    // engine the pipeline drains; with every key promoted to the
    // exact tier, spill round trips under frame pressure must
    // preserve bit-exact values and a bit-exact ledger.
    auto cfg = baseConfig(128);
    cfg.drainPlanner = true;
    ShardedEngine engine(cfg, 4);
    IngestService svc(engine);
    reliability::Scrubber scrub(engine);
    virt::VirtConfig vcfg;
    vcfg.groupSize = 16;          // 8 frames
    vcfg.promoteThreshold = 1;    // every key exact on first sight
    vcfg.restoreOpThreshold = 8;
    virt::VirtualCounterSpace space(svc, vcfg);
    space.attachScrubber(&scrub);

    Rng rng(67);
    std::unordered_map<uint64_t, int64_t> expect;
    for (size_t i = 0; i < 20000; ++i) {
        const uint64_t key = 1 + rng.nextBounded(300);
        const int64_t v = static_cast<int64_t>(1 + rng.nextBounded(3));
        space.add(key, v);
        expect[key] += v;
    }
    space.flush();

    EXPECT_GT(space.stats().spills, 0u);
    EXPECT_GT(scrub.stats().sweeps, 0u);
    for (const auto &[key, want] : expect)
        ASSERT_EQ(space.read(key), want) << "key " << key;

    svc.stop();
    const auto est = svc.engineStats();
    double ledger = 0.0;
    for (double row : est.fabric.attrNs)
        ledger += row;
    EXPECT_EQ(ledger, est.fabric.fabricNs);
    EXPECT_GT(est.fabric.attr(cim::FabricCat::Scrub), 0.0);
    EXPECT_GT(est.fabric.attr(cim::FabricCat::VirtSpill), 0.0);
}

TEST(Ingest, FlushTokensOnIdleServiceResolveImmediately)
{
    const auto cfg = baseConfig(32);
    ShardedEngine engine(cfg, 4);
    IngestService svc(engine);

    const uint64_t t0 = svc.flushAndWait();
    EXPECT_EQ(svc.flush(), t0); // idle: nothing new to cover

    svc.submit(BatchOp{2, 5, 0});
    const uint64_t t1 = svc.flushAndWait();
    EXPECT_GE(t1, t0);
    const auto snap = svc.snapshot();
    EXPECT_GE(snap.epoch, t1);
    EXPECT_EQ(snap.counters[2], 5);
}

TEST(Ingest, ReportMergesServiceAndEngineCounters)
{
    const auto cfg = baseConfig(32);
    ShardedEngine engine(cfg, 4);
    IngestService svc(engine);
    const auto ops = randomOps(60, cfg.numCounters, 23, false);
    svc.submit(ops);
    svc.flushAndWait();

    const auto report = svc.report();
    ASSERT_TRUE(report.count("service.submitted"));
    ASSERT_TRUE(report.count("engine.inputs_accumulated"));
    EXPECT_EQ(report.at("service.submitted"), ops.size());
    EXPECT_EQ(report.at("engine.inputs_accumulated"),
              svc.serviceStats().flushedOps);

    const auto text = renderCounters(report);
    EXPECT_NE(text.find("service.epochs"), std::string::npos);
    EXPECT_NE(text.find("engine.increments"), std::string::npos);

    // Fabric-level command tallies ride along in the merged view.
    ASSERT_TRUE(report.count("engine.fabric.tra"));
    EXPECT_GT(report.at("engine.fabric.tra"), 0u);
    EXPECT_EQ(report.at("engine.fabric.faults_injected"), 0u);
}

TEST(Ingest, DrainLatencyPercentilesTrackEpochs)
{
    const auto cfg = baseConfig(64);
    ShardedEngine engine(cfg, 4);
    IngestService svc(engine);
    EXPECT_EQ(svc.drainLatency().samples, 0u);

    const auto ops = randomOps(400, cfg.numCounters, 29, false);
    for (size_t lo = 0; lo < ops.size(); lo += 50) {
        svc.submit(std::span<const BatchOp>(ops).subspan(lo, 50));
        svc.flushAndWait();
    }

    const auto lat = svc.drainLatency();
    EXPECT_GT(lat.samples, 0u);
    EXPECT_EQ(lat.samples, svc.serviceStats().epochs);
    EXPECT_LE(lat.p50, lat.p95);
    EXPECT_LE(lat.p95, lat.p99);
    EXPECT_LE(lat.p99, lat.max);

    const auto report = svc.report();
    ASSERT_TRUE(report.count("service.drain_p50_us"));
    ASSERT_TRUE(report.count("service.drain_p99_us"));
    EXPECT_LE(report.at("service.drain_p50_us"),
              report.at("service.drain_max_us"));
}

TEST(ServiceStatsCounters, SumsAndCoversEveryField)
{
    static_assert(sizeof(ServiceStats) == 14 * sizeof(uint64_t),
                  "ServiceStats changed; update operator+=, "
                  "toCounters and this test");
    ServiceStats a{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                   13.0, 14.0};
    const ServiceStats b{10,  20,  30,  40,  50,  60,  70,
                         80,  90,  100, 110, 120, 130.0, 140.0};
    a += b;
    EXPECT_EQ(a.submitted, 11u);
    EXPECT_EQ(a.queued, 22u);
    EXPECT_EQ(a.dropped, 33u);
    EXPECT_EQ(a.stalls, 44u);
    EXPECT_EQ(a.coalesced, 55u);
    EXPECT_EQ(a.flushedOps, 66u);
    EXPECT_EQ(a.epochs, 77u);
    EXPECT_EQ(a.steals, 88u);
    EXPECT_EQ(a.plans, 99u);
    EXPECT_EQ(a.planPrograms, 110u);
    EXPECT_EQ(a.plannedOps, 121u);
    EXPECT_EQ(a.planFallbackOps, 132u);
    EXPECT_DOUBLE_EQ(a.fabricNs, 143.0);
    EXPECT_DOUBLE_EQ(a.fabricNj, 154.0);
    const auto m = a.toCounters();
    EXPECT_EQ(m.size(), 14u);
    EXPECT_EQ(m.at("service.fabric_ns"), 143u);
    EXPECT_EQ(m.at("service.fabric_nj"), 154u);
}

TEST(EngineStatsCounters, CoversEveryField)
{
    static_assert(sizeof(EngineStats) == 36 * sizeof(uint64_t),
                  "EngineStats changed; update toCounters and this "
                  "test");
    const EngineStats s{1,  2,  3,  4,  5,  6,  7,  8,
                        9,  10, 11, 12, 13, 14, 15, 16,
                        {17, 18, 19, 20, 21, 22, 23, 24.0, 25.0,
                         {24.0}},
                        26.0};
    const auto m = s.toCounters();
    EXPECT_EQ(m.size(), 35u);
    EXPECT_EQ(m.at("engine.inputs_accumulated"), 1u);
    EXPECT_EQ(m.at("engine.program_cache_misses"), 11u);
    EXPECT_EQ(m.at("engine.plans_executed"), 12u);
    EXPECT_EQ(m.at("engine.plan_programs"), 13u);
    EXPECT_EQ(m.at("engine.plan_lead_programs"), 14u);
    EXPECT_EQ(m.at("engine.planned_ops"), 15u);
    EXPECT_EQ(m.at("engine.plan_fallback_ops"), 16u);
    EXPECT_EQ(m.at("engine.fabric.aap"), 17u);
    EXPECT_EQ(m.at("engine.fabric.faults_injected"), 20u);
    EXPECT_EQ(m.at("engine.fabric.row_writes"), 22u);
    EXPECT_EQ(m.at("engine.fabric.ganged"), 23u);
    EXPECT_EQ(m.at("engine.fabric.ns"), 24u);
    EXPECT_EQ(m.at("engine.fabric.nj"), 25u);
    EXPECT_EQ(m.at("engine.fabric.critical_ns"), 26u);
    EXPECT_EQ(m.at("engine.fabric.attr.plan"), 24u);
    EXPECT_EQ(m.at("engine.fabric.attr.fallback"), 0u);
    EXPECT_EQ(m.at("engine.fabric.attr.mask_write"), 0u);
    EXPECT_EQ(m.at("engine.fabric.attr.scrub"), 0u);
    EXPECT_EQ(m.at("engine.fabric.attr.virt_spill"), 0u);
    EXPECT_EQ(m.at("engine.fabric.attr.virt_restore"), 0u);
    EXPECT_EQ(m.at("engine.fabric.attr.virt_materialize"), 0u);
    EXPECT_EQ(m.at("engine.fabric.attr.plan_fanout"), 0u);
    EXPECT_EQ(m.at("engine.fabric.attr.other"), 0u);
}

TEST(CounterMaps, MergeSumsMatchingKeys)
{
    CounterMap a{{"x", 1}, {"y", 2}};
    const CounterMap b{{"y", 40}, {"z", 5}};
    mergeCounters(a, b);
    EXPECT_EQ(a.at("x"), 1u);
    EXPECT_EQ(a.at("y"), 42u);
    EXPECT_EQ(a.at("z"), 5u);
}

TEST(ThreadPoolLane, CurrentLaneIdentifiesWorkers)
{
    core::ThreadPool pool(2);
    EXPECT_EQ(pool.currentLane(), core::ThreadPool::kNoLane);
    std::atomic<unsigned> lane0{~0u}, lane1{~0u};
    pool.post(0, [&] { lane0 = pool.currentLane(); });
    pool.post(1, [&] { lane1 = pool.currentLane(); });
    pool.drain();
    EXPECT_EQ(lane0.load(), 0u);
    EXPECT_EQ(lane1.load(), 1u);
}

TEST(ZipfRngTest, SkewsTowardsSmallKeys)
{
    ZipfRng zipf(1024, 1.0, 99);
    size_t head = 0;
    const size_t draws = 4000;
    for (size_t i = 0; i < draws; ++i)
        if (zipf.next() < 16)
            ++head;
    // Uniform would put ~1.6% in the first 16 keys; Zipf(1.0) puts
    // ~45% there.
    EXPECT_GT(head, draws / 4);
}

TEST(AsyncWorkloads, DnaHistogramMatchesHost)
{
    workloads::DnaConfig dcfg;
    dcfg.genomeLen = 4096;
    dcfg.binSize = 256;
    dcfg.numReads = 8;
    workloads::DnaWorkload dna(dcfg);

    auto ecfg = baseConfig(128);
    ecfg.capacityBits = 24;
    ShardedEngine engine(ecfg, 4);
    IngestService svc(engine);

    const auto host = dna.repetitionHistogram();
    const auto async = dna.repetitionHistogram(svc, 3);
    EXPECT_EQ(async.total(), host.total());
    for (int64_t v = 0; v <= 18; ++v)
        EXPECT_EQ(async.binCount(v), host.binCount(v)) << "bin " << v;
}

TEST(AsyncWorkloads, SparsityHistogramsMatchHost)
{
    const unsigned bits = 5;
    const auto values =
        workloads::sparseUnsignedVector(500, bits, 0.4, 77);

    auto ecfg = baseConfig(32);
    ecfg.capacityBits = 16;
    ShardedEngine engine(ecfg, 4);
    IngestService svc(engine);
    const auto h = workloads::valueHistogram(values, svc, 2);

    std::vector<uint64_t> expected(32, 0);
    for (uint64_t v : values)
        ++expected[v];
    EXPECT_EQ(h.total(), values.size());
    for (int64_t v = 0; v < 32; ++v)
        EXPECT_EQ(h.binCount(v), expected[static_cast<size_t>(v)])
            << "value " << v;

    const auto signedv =
        workloads::sparseSignedVector(300, bits, 0.3, 78);
    ShardedEngine engine2(ecfg, 4);
    IngestService svc2(engine2);
    const auto hm = workloads::magnitudeHistogram(signedv, svc2, 2);
    std::vector<uint64_t> mexp(32, 0);
    for (int64_t v : signedv)
        ++mexp[static_cast<size_t>(v < 0 ? -v : v)];
    for (int64_t v = 0; v < 32; ++v)
        EXPECT_EQ(hm.binCount(v), mexp[static_cast<size_t>(v)]);
}
